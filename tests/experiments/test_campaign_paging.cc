/**
 * @file
 * Campaign tests for the OS layer: the swap (S) column in the dataset
 * CSV, bounded-pool campaigns, resource-exhaustion cell isolation,
 * co-workload interference cells (shared-pool multi-tenancy), the
 * jobs/fused determinism guarantee under paging, and the resume-cache
 * format guard.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/scratch_dir.hh"
#include "experiments/campaign.hh"
#include "support/random.hh"

using namespace mosaic;
using namespace mosaic::exp;

namespace
{

/** A minimal TLB-sensitive workload (mirrors test_campaign.cc). */
class TinyWorkload : public workloads::Workload
{
  public:
    workloads::WorkloadInfo
    info() const override
    {
        return {"test", "tiny"};
    }

    Bytes heapPoolSize() const override { return 24_MiB; }

    trace::MemoryTrace
    generateTrace() const override
    {
        trace::MemoryTrace trace;
        Rng rng(99);
        VirtAddr base = alloc::PoolAddresses::heapBase;
        for (int i = 0; i < 12000; ++i)
            trace.add(base + alignDown(rng.nextBounded(24_MiB), 8), 2,
                      false);
        return trace;
    }
};

/** A second tiny workload used as the interference co-tenant. */
class NoisyWorkload : public workloads::Workload
{
  public:
    workloads::WorkloadInfo
    info() const override
    {
        return {"test", "noisy"};
    }

    Bytes heapPoolSize() const override { return 16_MiB; }

    trace::MemoryTrace
    generateTrace() const override
    {
        trace::MemoryTrace trace;
        Rng rng(7);
        VirtAddr base = alloc::PoolAddresses::heapBase;
        for (int i = 0; i < 9000; ++i)
            trace.add(base + alignDown(rng.nextBounded(16_MiB), 8), 2,
                      i % 3 == 0);
        return trace;
    }
};

/** Quiet single-workload campaign over SandyBridge via the factory. */
CampaignConfig
pagingConfig()
{
    CampaignConfig config;
    config.verbose = false;
    config.workloads = {"test/tiny"};
    config.platforms = {cpu::sandyBridge()};
    config.workloadFactory =
        [](const std::string &label) -> std::unique_ptr<workloads::Workload> {
        if (label == "test/tiny")
            return std::make_unique<TinyWorkload>();
        if (label == "test/noisy")
            return std::make_unique<NoisyWorkload>();
        throw std::runtime_error("unknown test workload " + label);
    };
    return config;
}

/** A frame budget that forces steady eviction of TinyWorkload's 24MiB
 *  working set yet still fits its largest (1GB rounds down to pool
 *  coverage) page: 2048 frames = 8 MiB. */
vm::OsConfig
boundedOs(std::uint64_t frames = 2048)
{
    vm::OsConfig os;
    os.memFrames = frames;
    os.policy = vm::ReplacementPolicyKind::Fifo;
    return os;
}

} // namespace

TEST(CampaignPaging, UnboundedKeepsLegacyCsvFormat)
{
    CampaignConfig config = pagingConfig();
    CampaignRunner runner(config);
    CampaignReport report = runner.runReport();
    ASSERT_TRUE(report.allOk()) << report.summary();
    EXPECT_FALSE(report.dataset.swapColumn());
    const std::string csv = report.dataset.toCsv();
    const std::string header = csv.substr(0, csv.find('\n'));
    EXPECT_EQ(header, datasetCsvHeader());
    for (const auto &record :
         report.dataset.runs("SandyBridge", "test/tiny"))
        EXPECT_EQ(record.result.swapCycles, 0u) << record.layout;
}

TEST(CampaignPaging, BoundedCampaignEmitsSwapColumnAndCharges)
{
    // 2 MiB of frames against a 24 MiB working set: every layout
    // sustains paging traffic but no layout's largest page (2MB)
    // exceeds the budget. Exclude the 1GB layout — a 1GB page cannot
    // fit and is covered by the isolation test below.
    CampaignConfig config = pagingConfig();
    config.os = boundedOs(512);
    config.include1g = false;
    CampaignRunner runner(config);
    CampaignReport report = runner.runReport();
    ASSERT_TRUE(report.allOk()) << report.summary();
    ASSERT_TRUE(report.dataset.swapColumn());

    const auto &runs = report.dataset.runs("SandyBridge", "test/tiny");
    ASSERT_EQ(runs.size(), 54u);
    for (const auto &record : runs) {
        EXPECT_GT(record.result.swapCycles, 0u) << record.layout;
        EXPECT_GT(record.result.majorFaults, 0u) << record.layout;
        // S is charged serially into the runtime, so R must cover it.
        EXPECT_GE(record.result.runtimeCycles, record.result.swapCycles)
            << record.layout;
    }

    // The samples carry S for the models.
    auto set = report.dataset.sampleSet("SandyBridge", "test/tiny");
    EXPECT_GT(set.all4k.s, 0.0);
}

TEST(CampaignPaging, SwapCsvRoundTrips)
{
    test::ScratchDir scratch;
    CampaignConfig config = pagingConfig();
    config.os = boundedOs(512);
    config.include1g = false;
    CampaignRunner runner(config);
    CampaignReport report = runner.runReport();
    ASSERT_TRUE(report.allOk()) << report.summary();

    const std::string path = scratch.file("paged.csv");
    report.dataset.save(path);
    auto loaded = Dataset::loadResult(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error().str();
    EXPECT_TRUE(loaded.value().swapColumn());
    EXPECT_EQ(loaded.value().toCsv(), report.dataset.toCsv());
}

TEST(CampaignPaging, OversizedPagesFailAsResourceCellsOthersSurvive)
{
    // 1 MiB of frames: all-4KB layouts page happily, but any layout
    // with a 2MB or 1GB page cannot fit one page and must fail as an
    // isolated Resource cell, not kill the campaign.
    CampaignConfig config = pagingConfig();
    config.os = boundedOs(256);
    CampaignRunner runner(config);
    CampaignReport report = runner.runReport();

    EXPECT_FALSE(report.allOk());
    EXPECT_GT(report.cellsCompleted, 0u);
    for (const auto &failure : report.failures) {
        EXPECT_EQ(failure.error.category(), ErrorCategory::Resource)
            << failure.layout << ": " << failure.error.str();
        EXPECT_NE(failure.layout, "*");
    }
    // The all-4KB reference survived with real paging traffic.
    const auto &all4k =
        report.dataset.findRun("SandyBridge", "test/tiny", layoutAll4k);
    EXPECT_GT(all4k.result.swapCycles, 0u);
    EXPECT_THROW(
        report.dataset.findRun("SandyBridge", "test/tiny", layoutAll1g),
        std::exception);
}

TEST(CampaignPaging, CoWorkloadRequiresBoundedPool)
{
    CampaignConfig config = pagingConfig();
    config.coWorkload = "test/noisy"; // but os stays unbounded
    CampaignRunner runner(config);
    CampaignReport report = runner.runReport();
    ASSERT_EQ(report.failures.size(), 1u);
    EXPECT_EQ(report.failures[0].error.category(), ErrorCategory::Config);
    EXPECT_EQ(report.cellsCompleted, 0u);
}

TEST(CampaignPaging, CoWorkloadCannotBeSharded)
{
    CampaignConfig config = pagingConfig();
    config.os = boundedOs();
    config.coWorkload = "test/noisy";
    config.shardIndex = 0;
    config.shardCount = 2;
    CampaignRunner runner(config);
    CampaignReport report = runner.runReport();
    ASSERT_EQ(report.failures.size(), 1u);
    EXPECT_EQ(report.failures[0].error.category(), ErrorCategory::Config);
}

TEST(CampaignPaging, InterferenceSlowsThePrimaryTenant)
{
    CampaignConfig config = pagingConfig();
    config.os = boundedOs();
    config.include1g = false;
    CampaignRunner alone(config);
    CampaignReport baseline = alone.runReport();
    ASSERT_TRUE(baseline.allOk()) << baseline.summary();

    config.coWorkload = "test/noisy";
    CampaignRunner contended(config);
    CampaignReport report = contended.runReport();
    ASSERT_TRUE(report.allOk()) << report.summary();

    // Same grid shape: the recorded rows are the primary tenant's.
    const auto &alone_runs =
        baseline.dataset.runs("SandyBridge", "test/tiny");
    const auto &tenant_runs =
        report.dataset.runs("SandyBridge", "test/tiny");
    ASSERT_EQ(tenant_runs.size(), alone_runs.size());

    // Contention must show up as extra paging work somewhere (the
    // co-tenant steals frames), and never as *less* total runtime.
    std::uint64_t alone_swap = 0, tenant_swap = 0;
    for (std::size_t i = 0; i < alone_runs.size(); ++i) {
        EXPECT_EQ(tenant_runs[i].layout, alone_runs[i].layout);
        alone_swap += alone_runs[i].result.swapCycles;
        tenant_swap += tenant_runs[i].result.swapCycles;
    }
    EXPECT_GT(tenant_swap, alone_swap);
}

TEST(CampaignPaging, MultiTenantDeterministicAcrossJobsAndFused)
{
    CampaignConfig config = pagingConfig();
    config.os = boundedOs();
    config.include1g = false;
    config.coWorkload = "test/noisy";
    config.jobs = 1;

    CampaignReport first = CampaignRunner(config).runReport();
    ASSERT_TRUE(first.allOk()) << first.summary();
    const std::string golden = first.dataset.toCsv();

    config.jobs = 4;
    CampaignReport parallel = CampaignRunner(config).runReport();
    ASSERT_TRUE(parallel.allOk()) << parallel.summary();
    EXPECT_EQ(parallel.dataset.toCsv(), golden) << "jobs=4 diverged";

    // Fused scheduling is ignored for tenant cells (each cell owns a
    // shared pool); the CSV must still be byte-identical.
    config.fused = true;
    CampaignReport fused = CampaignRunner(config).runReport();
    ASSERT_TRUE(fused.allOk()) << fused.summary();
    EXPECT_EQ(fused.dataset.toCsv(), golden) << "fused diverged";
}

TEST(CampaignPaging, PagedCampaignDeterministicAcrossJobsAndFused)
{
    // Single-tenant bounded paging: same determinism contract as the
    // classic campaign, across both scheduler shapes.
    CampaignConfig config = pagingConfig();
    config.os = boundedOs(512);
    config.include1g = false;
    config.jobs = 1;
    CampaignReport first = CampaignRunner(config).runReport();
    ASSERT_TRUE(first.allOk()) << first.summary();
    const std::string golden = first.dataset.toCsv();

    config.jobs = 4;
    config.fused = true;
    CampaignReport second = CampaignRunner(config).runReport();
    ASSERT_TRUE(second.allOk()) << second.summary();
    EXPECT_EQ(second.dataset.toCsv(), golden);
}

TEST(CampaignPaging, ResumeCacheWithWrongFormatStartsFresh)
{
    test::ScratchDir scratch;
    const std::string cache = scratch.file("campaign.csv");

    // Seed the cache with an unbounded (legacy-format) run.
    CampaignConfig config = pagingConfig();
    config.include1g = false;
    CampaignReport legacy = CampaignRunner(config).runReport(cache);
    ASSERT_TRUE(legacy.allOk()) << legacy.summary();
    EXPECT_EQ(legacy.cellsResumed, 0u);

    // A bounded campaign over the same cache must not splice legacy
    // rows (they have no S): it starts fresh and re-runs every cell.
    config.os = boundedOs(512);
    CampaignReport paged = CampaignRunner(config).runReport(cache);
    ASSERT_TRUE(paged.allOk()) << paged.summary();
    EXPECT_EQ(paged.cellsResumed, 0u);
    EXPECT_EQ(paged.cellsCompleted, 54u);
    ASSERT_TRUE(paged.dataset.swapColumn());

    // And the rewritten cache now resumes cleanly in bounded mode.
    CampaignReport resumed = CampaignRunner(config).runReport(cache);
    ASSERT_TRUE(resumed.allOk()) << resumed.summary();
    EXPECT_EQ(resumed.cellsResumed, 54u);
    EXPECT_EQ(resumed.cellsCompleted, 0u);
    EXPECT_EQ(resumed.dataset.toCsv(), paged.dataset.toCsv());
}
