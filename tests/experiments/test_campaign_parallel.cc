/**
 * @file
 * Determinism stress tests for the parallel campaign scheduler: the
 * same grid must produce a byte-identical dataset CSV and identical
 * golden counters for any --jobs value, and a killed run must resume
 * under a parallel scheduler without recomputing or duplicating cells.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <memory>
#include <stdexcept>

#include "common/scratch_dir.hh"
#include "experiments/campaign.hh"
#include "support/random.hh"

using namespace mosaic;
using namespace mosaic::exp;

namespace
{

/** Same tiny TLB-sensitive workload the serial campaign tests use. */
class TinyWorkload : public workloads::Workload
{
  public:
    workloads::WorkloadInfo
    info() const override
    {
        return {"test", "tiny"};
    }

    Bytes heapPoolSize() const override { return 24_MiB; }

    trace::MemoryTrace
    generateTrace() const override
    {
        trace::MemoryTrace trace;
        Rng rng(99);
        VirtAddr base = alloc::PoolAddresses::heapBase;
        for (int i = 0; i < 12000; ++i)
            trace.add(base + alignDown(rng.nextBounded(24_MiB), 8), 2,
                      false);
        return trace;
    }
};

/** Full paper-platform grid over the injected tiny workload. */
CampaignConfig
parallelConfig()
{
    CampaignConfig config;
    config.verbose = false;
    config.workloads = {"test/tiny"};
    config.workloadFactory =
        [](const std::string &label) -> std::unique_ptr<workloads::Workload> {
        if (label == "test/tiny")
            return std::make_unique<TinyWorkload>();
        throw std::runtime_error("unknown test workload: " + label);
    };
    return config;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

class CampaignParallelTest : public ::testing::Test
{
  protected:
    test::ScratchDir scratch_;
};

} // namespace

TEST_F(CampaignParallelTest, EffectiveJobsRespectsConfigAndFallsBack)
{
    CampaignConfig config = parallelConfig();
    config.jobs = 3;
    EXPECT_EQ(CampaignRunner(config).effectiveJobs(), 3u);
    config.jobs = 0;
    EXPECT_GE(CampaignRunner(config).effectiveJobs(), 1u);
}

TEST_F(CampaignParallelTest, DatasetIsByteIdenticalForAnyJobCount)
{
    // The issue's determinism stress drill: the identical grid at
    // --jobs 1 and --jobs 8 must yield byte-identical CSVs — same
    // rows, same order, same golden counters in every column.
    CampaignConfig serial_config = parallelConfig();
    serial_config.jobs = 1;
    std::string serial_csv = scratch_.file("jobs1.csv");
    CampaignReport serial =
        CampaignRunner(serial_config).runReport(serial_csv);
    ASSERT_TRUE(serial.allOk()) << serial.summary();
    EXPECT_EQ(serial.cellsCompleted, 3u * 55u); // 3 platforms x 55

    CampaignConfig wide_config = parallelConfig();
    wide_config.jobs = 8;
    std::string wide_csv = scratch_.file("jobs8.csv");
    CampaignReport wide =
        CampaignRunner(wide_config).runReport(wide_csv);
    ASSERT_TRUE(wide.allOk()) << wide.summary();
    EXPECT_EQ(wide.cellsCompleted, serial.cellsCompleted);

    std::string serial_bytes = slurp(serial_csv);
    ASSERT_FALSE(serial_bytes.empty());
    EXPECT_EQ(serial_bytes, slurp(wide_csv));

    // Golden counters: every record's PMU readout matches cell by
    // cell, not just the serialized text.
    for (const auto &platform : wide.dataset.platforms()) {
        const auto &a = serial.dataset.runs(platform, "test/tiny");
        const auto &b = wide.dataset.runs(platform, "test/tiny");
        ASSERT_EQ(a.size(), b.size()) << platform;
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].layout, b[i].layout);
            EXPECT_EQ(a[i].result.runtimeCycles,
                      b[i].result.runtimeCycles);
            EXPECT_EQ(a[i].result.tlbMisses, b[i].result.tlbMisses);
            EXPECT_EQ(a[i].result.walkCycles, b[i].result.walkCycles);
        }
    }
}

TEST_F(CampaignParallelTest, PerWorkerPhaseBreakdownCoversAllCells)
{
    PhaseStats before[4];
    for (unsigned worker = 0; worker < 4; ++worker) {
        before[worker] = metrics().phase("campaign/worker/" +
                                         std::to_string(worker));
    }

    CampaignConfig config = parallelConfig();
    config.jobs = 4;
    CampaignReport report = CampaignRunner(config).runReport();
    ASSERT_TRUE(report.allOk()) << report.summary();

    // The merged per-worker breakdown accounts for every simulated
    // cell exactly once, whichever workers they landed on.
    std::uint64_t cells_timed = 0;
    for (unsigned worker = 0; worker < 4; ++worker) {
        PhaseStats after = metrics().phase("campaign/worker/" +
                                           std::to_string(worker));
        cells_timed += after.count - before[worker].count;
    }
    EXPECT_EQ(cells_timed, report.cellsCompleted);
    EXPECT_EQ(metrics().gauge("campaign/jobs"), 4.0);
}

TEST_F(CampaignParallelTest, KilledRunResumesUnderParallelScheduler)
{
    // Reference run: the full grid in one go.
    CampaignConfig config = parallelConfig();
    config.jobs = 4;
    std::string full_csv = scratch_.file("full.csv");
    CampaignReport full = CampaignRunner(config).runReport(full_csv);
    ASSERT_TRUE(full.allOk()) << full.summary();
    std::string full_bytes = slurp(full_csv);

    // "Kill" mid-run: a partial checkpoint CSV holding an arbitrary
    // subset of the cells (some pairs partially done, one untouched).
    Dataset partial;
    std::size_t kept = 0, dropped = 0;
    const auto platforms = full.dataset.platforms();
    for (std::size_t p = 0; p < platforms.size(); ++p) {
        const auto &runs = full.dataset.runs(platforms[p], "test/tiny");
        for (std::size_t i = 0; i < runs.size(); ++i) {
            // Platform 0 keeps everything, 1 keeps half, 2 nothing.
            bool keep = p == 0 || (p == 1 && i % 2 == 0);
            if (keep) {
                partial.add(runs[i]);
                ++kept;
            } else {
                ++dropped;
            }
        }
    }
    ASSERT_GT(dropped, 0u);
    std::string resume_csv = scratch_.file("resume.csv");
    partial.save(resume_csv);

    // Resume under --jobs 4: only the dropped cells are simulated, and
    // the final CSV is byte-identical to the uninterrupted run.
    CampaignReport resumed = CampaignRunner(config).runReport(resume_csv);
    ASSERT_TRUE(resumed.allOk()) << resumed.summary();
    EXPECT_EQ(resumed.cellsResumed, kept);
    EXPECT_EQ(resumed.cellsCompleted, dropped);
    EXPECT_EQ(resumed.dataset.totalRuns(), kept + dropped);
    EXPECT_EQ(slurp(resume_csv), full_bytes);
}
