/**
 * @file
 * Tests for the report pipelines on a synthetic dataset (no
 * simulation), so the figure/table plumbing is covered independently
 * of the campaign.
 */

#include <gtest/gtest.h>

#include <fstream>

#include "experiments/report.hh"
#include "support/random.hh"

using namespace mosaic;
using namespace mosaic::exp;

namespace
{

/** A fake campaign for one platform/workload with smooth physics. */
Dataset
syntheticDataset(const std::string &platform = "SandyBridge",
                 const std::string &workload = "toy/w")
{
    Dataset dataset;
    Rng rng(3);
    for (int i = 0; i < 54; ++i) {
        double coverage = i / 53.0;
        double m = 5e5 * (1.0 - coverage) * (0.95 + 0.1 *
                                             rng.nextDouble());
        double h = 1e5 * (1.0 - 0.5 * coverage);
        double c = 50.0 * m;
        double r = 2e7 + 0.9 * c + c * c / 6e8 + 7.0 * h;

        RunRecord record;
        record.platform = platform;
        record.workload = workload;
        record.layout = i == 0 ? layoutAll4k
                      : i == 53 ? layoutAll2m
                                : "rand-" + std::to_string(i);
        record.result.runtimeCycles = static_cast<Cycles>(r);
        record.result.tlbHitsL2 = static_cast<std::uint64_t>(h);
        record.result.tlbMisses = static_cast<std::uint64_t>(m);
        record.result.walkCycles = static_cast<Cycles>(c);
        dataset.add(std::move(record));
    }
    RunRecord giant;
    giant.platform = platform;
    giant.workload = workload;
    giant.layout = layoutAll1g;
    giant.result.runtimeCycles = static_cast<Cycles>(2e7);
    dataset.add(std::move(giant));
    return dataset;
}

} // namespace

TEST(Report, PaperModelOrderHasNineModels)
{
    auto order = paperModelOrder();
    ASSERT_EQ(order.size(), 9u);
    EXPECT_EQ(order.front(), "pham");
    EXPECT_EQ(order.back(), "mosmodel");
}

TEST(Report, MakeModelByNameCoversAll)
{
    for (const auto &name : paperModelOrder()) {
        auto model = makeModelByName(name);
        EXPECT_EQ(model->name(), name);
    }
    EXPECT_THROW(makeModelByName("unknown"), std::runtime_error);
}

TEST(Report, ErrorGridComputesAllModels)
{
    auto dataset = syntheticDataset();
    auto rows = computeErrorGrid(dataset, ErrorKind::Max);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_TRUE(rows[0].tlbSensitive);
    EXPECT_EQ(rows[0].errors.size(), 9u);
    // Fixed models must err more than mosmodel on this curved data.
    EXPECT_GT(rows[0].errors.at("alam"), rows[0].errors.at("mosmodel"));
}

TEST(Report, GeoMeanNeverExceedsMax)
{
    auto dataset = syntheticDataset();
    auto max_rows = computeErrorGrid(dataset, ErrorKind::Max);
    auto geo_rows = computeErrorGrid(dataset, ErrorKind::GeoMean);
    for (const auto &name : paperModelOrder()) {
        EXPECT_LE(geo_rows[0].errors.at(name),
                  max_rows[0].errors.at(name) + 1e-6)
            << name;
    }
}

TEST(Report, InsensitivePairsAreDropped)
{
    // A workload whose 1GB run matches the 4KB run is insensitive.
    Dataset dataset = syntheticDataset();
    Dataset flat;
    for (const auto &record :
         dataset.runs("SandyBridge", "toy/w")) {
        RunRecord copy = record;
        copy.workload = "toy/flat";
        copy.result.runtimeCycles = 1000000;
        flat.add(copy);
    }
    auto rows = computeErrorGrid(flat, ErrorKind::Max);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_FALSE(rows[0].tlbSensitive);
    EXPECT_TRUE(rows[0].errors.empty());
    // And the overall aggregation skips it.
    auto overall = computeOverallMaxErrors(flat);
    EXPECT_DOUBLE_EQ(overall.at("mosmodel"), 0.0);
}

TEST(Report, CurveSortedByWalkCycles)
{
    auto dataset = syntheticDataset();
    auto curve = computeCurve(dataset, "SandyBridge", "toy/w",
                              {"poly1"});
    ASSERT_EQ(curve.size(), 54u);
    for (std::size_t i = 1; i < curve.size(); ++i)
        EXPECT_GE(curve[i].c, curve[i - 1].c);
}

TEST(Report, CaseStudyUsesHeldOut1g)
{
    auto dataset = syntheticDataset();
    auto rows = computeCaseStudy1g(dataset, {"mosmodel"});
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_DOUBLE_EQ(rows[0].measured1g, 2e7);
    // The 1GB point has zero C/H/M -> prediction ~ the intercept-side
    // value; on this clean data the error is small.
    EXPECT_LT(rows[0].errors.at("mosmodel"), 0.05);
}

TEST(Report, R2GridValuesInRange)
{
    auto dataset = syntheticDataset();
    auto rows = computeR2Grid(dataset);
    ASSERT_EQ(rows.size(), 1u);
    for (double r2 : {rows[0].r2c, rows[0].r2m, rows[0].r2h}) {
        EXPECT_GE(r2, 0.0);
        EXPECT_LE(r2, 1.0);
    }
    EXPECT_GT(rows[0].r2c, 0.9); // R is driven by C here
}

TEST(Report, CrossValidationMapHasNewModels)
{
    auto dataset = syntheticDataset();
    auto cv = computeCrossValidation(dataset, 6);
    EXPECT_EQ(cv.size(), 4u);
    EXPECT_TRUE(cv.count("mosmodel"));
    EXPECT_TRUE(cv.count("poly3"));
    EXPECT_LT(cv.at("mosmodel"), 0.10);
}

TEST(Report, MultiplePlatformsAggregated)
{
    Dataset combined = syntheticDataset("SandyBridge", "toy/w");
    // The dataset must outlive the loop: runs() returns a reference
    // into it, and a temporary would dangle before the first add().
    Dataset haswell = syntheticDataset("Haswell", "toy/w");
    for (const auto &record : haswell.runs("Haswell", "toy/w"))
        combined.add(record);
    EXPECT_EQ(combined.platforms().size(), 2u);
    auto rows = computeErrorGrid(combined, ErrorKind::Max);
    EXPECT_EQ(rows.size(), 2u);
}

#include <cstdio>

#include "experiments/plot_export.hh"

TEST(PlotExport, CurveFilesWellFormed)
{
    auto dataset = syntheticDataset();
    auto written = exportCurve(dataset, "SandyBridge", "toy/w",
                               {"yaniv", "mosmodel"},
                               "test_export_curve");
    ASSERT_EQ(written.size(), 2u);

    std::ifstream dat(written[0]);
    ASSERT_TRUE(dat.good());
    std::string line;
    std::getline(dat, line); // title comment
    std::getline(dat, line); // column header
    EXPECT_NE(line.find("yaniv"), std::string::npos);
    std::size_t rows = 0;
    while (std::getline(dat, line)) {
        if (!line.empty())
            ++rows;
    }
    EXPECT_EQ(rows, 54u);
    for (const auto &path : written)
        std::remove(path.c_str());
}

TEST(PlotExport, OverallErrorsCoverAllModels)
{
    auto dataset = syntheticDataset();
    auto written = exportOverallErrors(dataset, "test_export_fig2");
    std::ifstream dat(written[0]);
    std::string line;
    std::getline(dat, line); // header comment
    std::size_t rows = 0;
    while (std::getline(dat, line)) {
        if (!line.empty())
            ++rows;
    }
    EXPECT_EQ(rows, paperModelOrder().size());
    for (const auto &path : written)
        std::remove(path.c_str());
}

TEST(PlotExport, GridOnePlatformPerFile)
{
    auto dataset = syntheticDataset();
    auto written = exportErrorGrid(dataset, ErrorKind::Max,
                                   "test_export_grid");
    ASSERT_EQ(written.size(), 1u);
    std::ifstream dat(written[0]);
    ASSERT_TRUE(dat.good());
    for (const auto &path : written)
        std::remove(path.c_str());
}
