/**
 * @file
 * Fault-tolerance tests for the campaign engine: cell-failure
 * isolation, corrupt-trace-cache recovery, transient-I/O retries, and
 * checkpoint/resume from a partial dataset CSV — the failure drills
 * behind "a killed campaign loses at most one checkpoint interval".
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sys/stat.h>
#include <unistd.h>

#include "common/scratch_dir.hh"
#include "experiments/campaign.hh"
#include "support/fault_injector.hh"
#include "support/io_util.hh"
#include "support/random.hh"
#include "trace/trace_store.hh"

using namespace mosaic;
using namespace mosaic::exp;

namespace
{

/** A minimal TLB-sensitive workload (mirrors test_campaign.cc). */
class TinyWorkload : public workloads::Workload
{
  public:
    workloads::WorkloadInfo
    info() const override
    {
        return {"test", "tiny"};
    }

    Bytes heapPoolSize() const override { return 24_MiB; }

    trace::MemoryTrace
    generateTrace() const override
    {
        trace::MemoryTrace trace;
        Rng rng(99);
        VirtAddr base = alloc::PoolAddresses::heapBase;
        for (int i = 0; i < 12000; ++i)
            trace.add(base + alignDown(rng.nextBounded(24_MiB), 8), 2,
                      false);
        return trace;
    }
};

/** Quiet config with instant retries and a scratch trace-cache dir. */
CampaignConfig
faultConfig(const std::string &trace_dir = std::string())
{
    CampaignConfig config;
    config.verbose = false;
    config.retry.initialDelay = std::chrono::milliseconds(0);
    config.traceCacheDir = trace_dir;
    if (!trace_dir.empty())
        mkdir(trace_dir.c_str(), 0755);
    return config;
}

class CampaignFaultTest : public ::testing::Test
{
  protected:
    void SetUp() override { faults().reset(); }
    void TearDown() override { faults().reset(); }

    /** Where the trace cache stores TinyWorkload's trace. */
    static std::string
    tinyCachePath(const std::string &dir)
    {
        return dir + "/" + traceCacheStem("test/tiny") +
               trace::traceStoreExtension;
    }

    test::ScratchDir scratch_;
};

} // namespace

TEST_F(CampaignFaultTest, CorruptTraceCacheIsRegenerated)
{
    std::string dir = scratch_.file("trace_cache");
    std::string cache = tinyCachePath(dir);
    CampaignConfig config = faultConfig(dir);
    TinyWorkload workload;

    // First pair run populates the cache — with the write corrupted.
    faults().arm(FaultSite::StoreCorrupt, 1);
    Dataset first;
    auto failures = CampaignRunner::runPair(workload, cpu::sandyBridge(),
                                            config, first);
    faults().reset();
    EXPECT_TRUE(failures.empty());
    ASSERT_TRUE(trace::isTraceStoreFile(cache));
    EXPECT_FALSE(trace::TraceStore::open(cache).ok()); // damage landed

    // Second run must detect the damage (CRC), quarantine the file,
    // regenerate, and still complete every cell.
    Dataset second;
    failures = CampaignRunner::runPair(workload, cpu::sandyBridge(),
                                       config, second);
    EXPECT_TRUE(failures.empty());
    EXPECT_EQ(second.runs("SandyBridge", "test/tiny").size(), 55u);

    // The damaged file was preserved as evidence, the repaired cache
    // is valid again, and the two datasets agree (the trace is
    // deterministic either way).
    EXPECT_TRUE(trace::isTraceStoreFile(cache + ".corrupt"));
    EXPECT_TRUE(trace::TraceStore::open(cache).ok());
    EXPECT_EQ(first.findRun("SandyBridge", "test/tiny", layoutAll2m)
                  .result.runtimeCycles,
              second.findRun("SandyBridge", "test/tiny", layoutAll2m)
                  .result.runtimeCycles);
}

TEST_F(CampaignFaultTest, TransientOpenFailureIsRetried)
{
    std::string dir = scratch_.file("retry_cache");
    std::string cache = tinyCachePath(dir);
    CampaignConfig config = faultConfig(dir);
    TinyWorkload workload;

    // Populate a valid cache.
    Dataset warmup;
    CampaignRunner::runPair(workload, cpu::sandyBridge(), config, warmup);
    ASSERT_TRUE(trace::TraceStore::open(cache).ok());

    // Fail the 1st cache open; the backoff retry must recover.
    faults().arm(FaultSite::StoreOpen, 1);
    Dataset dataset;
    std::size_t retries = 0;
    auto failures = CampaignRunner::runPair(
        workload, cpu::sandyBridge(), config, dataset, nullptr, &retries);
    faults().reset();

    EXPECT_TRUE(failures.empty());
    EXPECT_GE(retries, 1u);
    EXPECT_EQ(dataset.runs("SandyBridge", "test/tiny").size(), 55u);
}

TEST_F(CampaignFaultTest, ExhaustedRetriesFailThePairNotTheCampaign)
{
    std::string dir = scratch_.file("dead_cache");
    std::string cache = tinyCachePath(dir);
    CampaignConfig config = faultConfig(dir);
    config.retry.maxAttempts = 2;
    TinyWorkload workload;

    Dataset warmup;
    CampaignRunner::runPair(workload, cpu::sandyBridge(), config, warmup);
    ASSERT_TRUE(trace::isTraceStoreFile(cache));

    // Every open fails: the cache load gives up after its retries, but
    // the engine falls back to regenerating the trace in memory — the
    // cache is an optimization, never a single point of failure. The
    // re-save also fails (same site), which only costs the cache.
    faults().arm(FaultSite::StoreOpen, 0);
    Dataset dataset;
    auto failures = CampaignRunner::runPair(workload, cpu::sandyBridge(),
                                            config, dataset);
    faults().reset();

    EXPECT_TRUE(failures.empty());
    EXPECT_EQ(dataset.runs("SandyBridge", "test/tiny").size(), 55u);
}

/**
 * The end-to-end drill from the issue: a campaign with an injected
 * fault completes, reports the failed cells in its summary, and a
 * rerun resumes from the partial CSV without recomputing covered
 * cells. Uses the real registry workload "gups/8GB" (the cheapest one)
 * because the threaded runner resolves workloads by label.
 */
TEST_F(CampaignFaultTest, FaultyCampaignCompletesReportsAndResumes)
{
    std::string cache = scratch_.file("resume.csv");

    CampaignConfig config = faultConfig();
    config.workloads = {"gups/8GB", "bogus/does-not-exist"};
    config.platforms = {cpu::sandyBridge()};
    config.jobs = 2;
    config.checkpointEvery = 1;
    CampaignRunner runner(config);

    // Phase A: the bad workload fails; the good pair still completes
    // and is checkpointed + saved to the CSV cache.
    CampaignReport first = runner.runReport(cache);
    EXPECT_FALSE(first.allOk());
    ASSERT_EQ(first.failures.size(), 1u);
    EXPECT_EQ(first.failures[0].workload, "bogus/does-not-exist");
    EXPECT_EQ(first.failures[0].layout, "*");
    EXPECT_EQ(first.failures[0].error.category(), ErrorCategory::Config);
    EXPECT_EQ(first.cellsCompleted, 55u);
    EXPECT_EQ(first.cellsResumed, 0u);
    EXPECT_GE(first.checkpointsWritten, 1u);
    EXPECT_NE(first.summary().find("FAILED"), std::string::npos);
    EXPECT_NE(first.summary().find("bogus/does-not-exist"),
              std::string::npos);
    ASSERT_EQ(first.dataset.runs("SandyBridge", "gups/8GB").size(), 55u);

    // Phase B: a rerun resumes every completed cell from the CSV and
    // simulates nothing new; only the bad workload fails again.
    CampaignReport second = runner.runReport(cache);
    EXPECT_EQ(second.cellsResumed, 55u);
    EXPECT_EQ(second.cellsCompleted, 0u);
    ASSERT_EQ(second.failures.size(), 1u);
    EXPECT_EQ(second.failures[0].workload, "bogus/does-not-exist");
    EXPECT_EQ(second.dataset.totalRuns(), 55u);

    // Phase C: drop 5 cells from the cache (an interrupted run's
    // partial CSV); the resume recomputes exactly those 5, and the
    // recomputed values match the original run bit-for-bit.
    const auto &complete = first.dataset.runs("SandyBridge", "gups/8GB");
    Dataset partial;
    std::vector<std::string> dropped;
    for (std::size_t i = 0; i < complete.size(); ++i) {
        if (i < 5)
            dropped.push_back(complete[i].layout);
        else
            partial.add(complete[i]);
    }
    partial.save(cache);

    CampaignConfig good_only = config;
    good_only.workloads = {"gups/8GB"};
    CampaignRunner resumer(good_only);
    CampaignReport third = resumer.runReport(cache);
    EXPECT_TRUE(third.allOk());
    EXPECT_EQ(third.cellsResumed, 50u);
    EXPECT_EQ(third.cellsCompleted, 5u);
    EXPECT_EQ(third.dataset.totalRuns(), 55u);
    for (const auto &layout : dropped) {
        EXPECT_EQ(third.dataset.findRun("SandyBridge", "gups/8GB", layout)
                      .result.runtimeCycles,
                  first.dataset.findRun("SandyBridge", "gups/8GB", layout)
                      .result.runtimeCycles)
            << layout;
    }

    // The final CSV on disk now covers the full pair again.
    auto reloaded = Dataset::loadResult(cache);
    ASSERT_TRUE(reloaded.ok());
    EXPECT_EQ(reloaded.value().totalRuns(), 55u);
}

/**
 * Resume-after-checkpoint row uniqueness: a cache CSV damaged into
 * holding the same (platform, workload, layout) rows twice — the shape
 * a checkpoint that fired mid-pair plus a later re-append would leave —
 * must resume into a dataset with every key exactly once, even when
 * the configured grid also names the pair twice.
 */
TEST_F(CampaignFaultTest, ResumeAfterCheckpointNeverDuplicatesRows)
{
    std::string cache = scratch_.file("dedup.csv");

    CampaignConfig config = faultConfig();
    config.workloads = {"gups/8GB"};
    config.platforms = {cpu::sandyBridge()};
    config.jobs = 2;
    CampaignRunner runner(config);

    // A complete pair to damage.
    CampaignReport first = runner.runReport(cache);
    ASSERT_TRUE(first.allOk());
    const auto &complete = first.dataset.runs("SandyBridge", "gups/8GB");
    ASSERT_EQ(complete.size(), 55u);

    // Partial cache with duplicates: the first 10 cells twice over,
    // the remaining 45 missing.
    Dataset damaged;
    for (std::size_t i = 0; i < 10; ++i)
        damaged.add(complete[i]);
    for (std::size_t i = 0; i < 10; ++i)
        damaged.add(complete[i]);
    damaged.save(cache);
    ASSERT_EQ(Dataset::loadResult(cache).value().totalRuns(), 20u);

    // Resume with the pair listed twice in the grid for good measure.
    CampaignConfig doubled = config;
    doubled.workloads = {"gups/8GB", "gups/8GB"};
    CampaignRunner resumer(doubled);
    CampaignReport second = resumer.runReport(cache);
    EXPECT_TRUE(second.allOk());
    EXPECT_EQ(second.cellsResumed, 10u);
    EXPECT_EQ(second.cellsCompleted, 45u);

    // Every key appears exactly once, in memory and in the saved CSV.
    auto assertUnique = [](const Dataset &dataset) {
        const auto &runs = dataset.runs("SandyBridge", "gups/8GB");
        EXPECT_EQ(runs.size(), 55u);
        std::set<std::string> layouts;
        for (const auto &record : runs)
            EXPECT_TRUE(layouts.insert(record.layout).second)
                << "duplicate row for layout " << record.layout;
    };
    assertUnique(second.dataset);
    auto reloaded = Dataset::loadResult(cache);
    ASSERT_TRUE(reloaded.ok());
    assertUnique(reloaded.value());
    EXPECT_EQ(reloaded.value().totalRuns(), 55u);
}

/**
 * loadOrRun completeness must count distinct layouts, not raw rows: a
 * cache holding 55 rows made of 11 layouts five times over has the
 * "right" row count, but 44 cells were never simulated. The old raw
 * runs().size() check declared such a cache complete and returned it
 * as-is.
 */
TEST_F(CampaignFaultTest, LoadOrRunTreatsDuplicateRowCacheAsIncomplete)
{
    std::string cache = scratch_.file("loadorrun.csv");

    CampaignConfig config = faultConfig();
    config.workloads = {"gups/8GB"};
    config.platforms = {cpu::sandyBridge()};
    config.jobs = 2;

    CampaignRunner runner(config);
    Dataset complete_data = runner.loadOrRun(cache);
    const auto &complete = complete_data.runs("SandyBridge", "gups/8GB");
    ASSERT_EQ(complete.size(), 55u);

    // Damaged cache: the first 11 layouts repeated five times — 55 raw
    // rows (the expected per-pair count), only 11 distinct layouts.
    Dataset damaged;
    for (int copy = 0; copy < 5; ++copy) {
        for (std::size_t i = 0; i < 11; ++i)
            damaged.add(complete[i]);
    }
    damaged.save(cache);
    ASSERT_EQ(Dataset::loadResult(cache).value().totalRuns(), 55u);

    // loadOrRun must see through the row count, resume the 44 missing
    // layouts, and hand back a full deduplicated pair.
    CampaignRunner resumer(config);
    Dataset repaired = resumer.loadOrRun(cache);
    const auto &runs = repaired.runs("SandyBridge", "gups/8GB");
    EXPECT_EQ(runs.size(), 55u);
    std::set<std::string> layouts;
    for (const auto &record : runs)
        layouts.insert(record.layout);
    EXPECT_EQ(layouts.size(), 55u);

    // The resumed cells match the original simulation bit-for-bit.
    for (const auto &record : complete) {
        EXPECT_EQ(repaired
                      .findRun("SandyBridge", "gups/8GB", record.layout)
                      .result.runtimeCycles,
                  record.result.runtimeCycles)
            << record.layout;
    }
}
