/**
 * @file
 * Sharded-campaign tests: the deterministic cell partition, shard CSV
 * manifests, the merge back to the byte-identical canonical dataset,
 * the kill/resume chaos drill for the sharded path, and degraded
 * merges that turn a lost shard into an explicit missing-cell report.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <memory>
#include <set>
#include <stdexcept>

#include "common/scratch_dir.hh"
#include "experiments/campaign.hh"
#include "experiments/shard.hh"
#include "support/fault_injector.hh"
#include "support/io_util.hh"
#include "support/random.hh"

using namespace mosaic;
using namespace mosaic::exp;

namespace
{

/** Same tiny TLB-sensitive workload the other campaign tests use. */
class TinyWorkload : public workloads::Workload
{
  public:
    workloads::WorkloadInfo
    info() const override
    {
        return {"test", "tiny"};
    }

    Bytes heapPoolSize() const override { return 24_MiB; }

    trace::MemoryTrace
    generateTrace() const override
    {
        trace::MemoryTrace trace;
        Rng rng(99);
        VirtAddr base = alloc::PoolAddresses::heapBase;
        for (int i = 0; i < 12000; ++i)
            trace.add(base + alignDown(rng.nextBounded(24_MiB), 8), 2,
                      false);
        return trace;
    }
};

/** Full paper-platform grid over the injected tiny workload. */
CampaignConfig
shardTestConfig()
{
    CampaignConfig config;
    config.verbose = false;
    config.retry.initialDelay = std::chrono::milliseconds(0);
    config.workloads = {"test/tiny"};
    config.workloadFactory =
        [](const std::string &label) -> std::unique_ptr<workloads::Workload> {
        if (label == "test/tiny")
            return std::make_unique<TinyWorkload>();
        throw std::runtime_error("unknown test workload: " + label);
    };
    return config;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

class CampaignShardTest : public ::testing::Test
{
  protected:
    void SetUp() override { faults().reset(); }
    void TearDown() override { faults().reset(); }

    /** Run one shard of a 2-shard campaign and return its CSV path. */
    std::string
    runShard(CampaignConfig config, unsigned index, unsigned count,
             const char *name)
    {
        config.shardIndex = index;
        config.shardCount = count;
        std::string csv = scratch_.file(name);
        CampaignReport report = CampaignRunner(config).runReport(csv);
        EXPECT_TRUE(report.allOk()) << report.summary();
        return csv;
    }

    test::ScratchDir scratch_;
};

} // namespace

TEST_F(CampaignShardTest, PartitionCoversEveryCellExactlyOnce)
{
    // The partition is pure index arithmetic: every (pair, layout)
    // cell lands on exactly one shard, and the per-pair counts add up.
    for (unsigned count : {1u, 2u, 3u, 5u}) {
        for (std::size_t pair = 0; pair < 7; ++pair) {
            std::size_t pair_total = 0;
            for (std::size_t layout = 0; layout < 55; ++layout) {
                unsigned owners = 0;
                for (unsigned shard = 0; shard < count; ++shard) {
                    if (shardOwnsCell(shard, count, pair, layout, 55))
                        ++owners;
                }
                EXPECT_EQ(owners, 1u)
                    << "count=" << count << " pair=" << pair
                    << " layout=" << layout;
            }
            for (unsigned shard = 0; shard < count; ++shard)
                pair_total += shardCellsOfPair(shard, count, pair, 55);
            EXPECT_EQ(pair_total, 55u);
        }
    }
}

TEST_F(CampaignShardTest, ConfigHashPinsTheCampaignDefinition)
{
    std::vector<std::string> w = {"test/tiny"};
    std::vector<std::string> p = {"A", "B"};
    std::uint32_t base = shardConfigHash(w, p, true, 7, 55, 2);
    EXPECT_EQ(base, shardConfigHash(w, p, true, 7, 55, 2));
    EXPECT_NE(base, shardConfigHash(w, p, true, 8, 55, 2)); // seed
    EXPECT_NE(base, shardConfigHash(w, p, false, 7, 54, 2)); // 1g
    EXPECT_NE(base, shardConfigHash(w, p, true, 7, 55, 3)); // shards
    EXPECT_NE(base, shardConfigHash(w, {"A"}, true, 7, 55, 2));
}

TEST_F(CampaignShardTest, TwoShardMergeIsByteIdenticalToUnsharded)
{
    // The acceptance drill: shard 0/2 and 1/2 under a parallel
    // scheduler, merged, must reproduce the single-process CSV byte
    // for byte.
    CampaignConfig config = shardTestConfig();
    config.jobs = 4;
    std::string full_csv = scratch_.file("full.csv");
    CampaignReport full = CampaignRunner(config).runReport(full_csv);
    ASSERT_TRUE(full.allOk()) << full.summary();
    ASSERT_EQ(full.cellsCompleted, 3u * 55u);

    std::string shard0 = runShard(config, 0, 2, "shard0.csv");
    std::string shard1 = runShard(config, 1, 2, "shard1.csv");

    auto a = readShardFile(shard0);
    auto b = readShardFile(shard1);
    ASSERT_TRUE(a.ok()) << a.error().str();
    ASSERT_TRUE(b.ok()) << b.error().str();

    // The round-robin split is balanced to within one cell and
    // complete: 165 = 83 + 82.
    EXPECT_EQ(a.value().manifest.cells, a.value().manifest.expected);
    EXPECT_EQ(b.value().manifest.cells, b.value().manifest.expected);
    EXPECT_EQ(a.value().manifest.cells + b.value().manifest.cells,
              3u * 55u);
    EXPECT_EQ(a.value().manifest.configHash,
              b.value().manifest.configHash);

    auto merged = mergeShards({a.value(), b.value()}, false);
    ASSERT_TRUE(merged.ok()) << merged.error().str();
    EXPECT_TRUE(merged.value().missing.empty());
    EXPECT_EQ(merged.value().rowsMerged, 3u * 55u);
    EXPECT_EQ(merged.value().csv, slurp(full_csv));
}

TEST_F(CampaignShardTest, FusedShardedMergeMatchesUnshardedToo)
{
    // Fused replay under sharding groups a pair's owned (strided)
    // layouts into shared-trace passes; results — and therefore the
    // merged CSV — must still be byte-identical to the plain run.
    CampaignConfig plain = shardTestConfig();
    plain.jobs = 4;
    std::string full_csv = scratch_.file("fused_full.csv");
    CampaignReport full = CampaignRunner(plain).runReport(full_csv);
    ASSERT_TRUE(full.allOk()) << full.summary();

    CampaignConfig fused = plain;
    fused.fused = true;
    std::string shard0 = runShard(fused, 0, 2, "fused_shard0.csv");
    std::string shard1 = runShard(fused, 1, 2, "fused_shard1.csv");

    auto a = readShardFile(shard0);
    auto b = readShardFile(shard1);
    ASSERT_TRUE(a.ok()) << a.error().str();
    ASSERT_TRUE(b.ok()) << b.error().str();
    auto merged = mergeShards({a.value(), b.value()}, false);
    ASSERT_TRUE(merged.ok()) << merged.error().str();
    EXPECT_EQ(merged.value().csv, slurp(full_csv));
}

TEST_F(CampaignShardTest, KilledShardResumesAndMergesByteIdentical)
{
    // The chaos drill: shard 1/2 "killed" mid-checkpoint — its CSV cut
    // off mid-row, the shape a power cut through a non-atomic writer
    // leaves — must resume, complete, and merge byte-identical to the
    // single-process run.
    CampaignConfig config = shardTestConfig();
    config.jobs = 4;
    std::string full_csv = scratch_.file("chaos_full.csv");
    CampaignReport full = CampaignRunner(config).runReport(full_csv);
    ASSERT_TRUE(full.allOk()) << full.summary();

    std::string shard0 = runShard(config, 0, 2, "chaos_shard0.csv");
    std::string shard1 = runShard(config, 1, 2, "chaos_shard1.csv");
    std::string shard1_complete = slurp(shard1);

    // Damage shard 1: keep roughly the first third of the file and cut
    // mid-row (no trailing newline, no manifest).
    std::string torn = shard1_complete.substr(0, shard1_complete.size() / 3);
    ASSERT_TRUE(writeFileAtomic(shard1, torn).ok());
    ASSERT_FALSE(readShardFile(shard1).ok()); // unusable as-is

    // Resume: covered cells are kept, the lost ones recomputed, and
    // the republished shard is byte-identical to the uninterrupted
    // one — manifest included.
    CampaignConfig resume = config;
    resume.shardIndex = 1;
    resume.shardCount = 2;
    CampaignReport resumed = CampaignRunner(resume).runReport(shard1);
    ASSERT_TRUE(resumed.allOk()) << resumed.summary();
    EXPECT_GT(resumed.cellsResumed, 0u);
    EXPECT_GT(resumed.cellsCompleted, 0u);
    EXPECT_EQ(slurp(shard1), shard1_complete);

    auto a = readShardFile(shard0);
    auto b = readShardFile(shard1);
    ASSERT_TRUE(a.ok()) << a.error().str();
    ASSERT_TRUE(b.ok()) << b.error().str();
    auto merged = mergeShards({a.value(), b.value()}, false);
    ASSERT_TRUE(merged.ok()) << merged.error().str();
    EXPECT_EQ(merged.value().csv, slurp(full_csv));
}

TEST_F(CampaignShardTest, DegradedMergeReportsEveryMissingCell)
{
    CampaignConfig config = shardTestConfig();
    config.jobs = 2;
    std::string shard0 = runShard(config, 0, 2, "degraded_shard0.csv");

    auto a = readShardFile(shard0);
    ASSERT_TRUE(a.ok()) << a.error().str();

    // Strict merge refuses to paper over the absent shard.
    auto strict = mergeShards({a.value()}, false);
    ASSERT_FALSE(strict.ok());

    // Degraded merge recovers shard 0's cells and names shard 1's,
    // cell by cell, so one lost shard costs its own cells only.
    auto degraded = mergeShards({a.value()}, true);
    ASSERT_TRUE(degraded.ok()) << degraded.error().str();
    const MergeOutcome &outcome = degraded.value();
    EXPECT_EQ(outcome.rowsMerged, a.value().manifest.cells);
    EXPECT_EQ(outcome.rowsMerged + outcome.missing.size(), 3u * 55u);
    std::set<std::array<std::string, 3>> reported;
    for (const auto &cell : outcome.missing) {
        EXPECT_EQ(cell.workload, "test/tiny");
        EXPECT_TRUE(
            reported.insert({cell.platform, cell.workload, cell.layout})
                .second);
        // A missing cell is by definition not in the merged rows.
        EXPECT_FALSE(a.value().rows.count(
            {cell.platform, cell.workload, cell.layout}));
    }

    // The partial CSV still parses as a dataset covering the merged
    // rows.
    std::string partial_csv = scratch_.file("degraded_partial.csv");
    ASSERT_TRUE(writeFileAtomic(partial_csv, outcome.csv).ok());
    auto loaded = Dataset::loadResult(partial_csv);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value().totalRuns(), outcome.rowsMerged);
}

TEST_F(CampaignShardTest, MergeRejectsShardsOfADifferentCampaign)
{
    CampaignConfig config = shardTestConfig();
    config.jobs = 2;
    std::string shard0 = runShard(config, 0, 2, "foreign_shard0.csv");

    CampaignConfig other = config;
    other.seed = config.seed + 1; // different layout exploration
    std::string shard1 = runShard(other, 1, 2, "foreign_shard1.csv");

    auto a = readShardFile(shard0);
    auto b = readShardFile(shard1);
    ASSERT_TRUE(a.ok()) << a.error().str();
    ASSERT_TRUE(b.ok()) << b.error().str();
    ASSERT_NE(a.value().manifest.configHash,
              b.value().manifest.configHash);

    for (bool allow_missing : {false, true}) {
        auto merged = mergeShards({a.value(), b.value()}, allow_missing);
        ASSERT_FALSE(merged.ok());
        EXPECT_NE(merged.error().message().find("config"),
                  std::string::npos);
    }
}

TEST_F(CampaignShardTest, ReadShardFileRejectsUnshardedCsv)
{
    // A plain campaign CSV carries no manifest; feeding it to the
    // merge must be an explicit Corrupt error, not a silent merge of
    // unverifiable rows.
    CampaignConfig config = shardTestConfig();
    config.jobs = 2;
    config.platforms = {cpu::sandyBridge()};
    std::string csv = scratch_.file("unsharded.csv");
    CampaignReport report = CampaignRunner(config).runReport(csv);
    ASSERT_TRUE(report.allOk()) << report.summary();

    auto shard = readShardFile(csv);
    ASSERT_FALSE(shard.ok());
    EXPECT_EQ(shard.error().category(), ErrorCategory::Corrupt);
    EXPECT_NE(shard.error().message().find("manifest"),
              std::string::npos);
}

TEST_F(CampaignShardTest, InjectedMergeReadFaultIsTransientIo)
{
    CampaignConfig config = shardTestConfig();
    config.jobs = 2;
    config.platforms = {cpu::sandyBridge()};
    std::string shard0 = runShard(config, 0, 2, "fault_shard0.csv");

    faults().arm(FaultSite::MergeRead, 1);
    auto result = readShardFile(shard0);
    faults().reset();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().category(), ErrorCategory::Io);
    EXPECT_TRUE(result.error().transient());
    EXPECT_TRUE(readShardFile(shard0).ok()); // a retry succeeds
}

TEST_F(CampaignShardTest, InjectedShardWriteFaultFailsTheSaveNotTheRun)
{
    CampaignConfig config = shardTestConfig();
    config.jobs = 2;
    config.platforms = {cpu::sandyBridge()};
    config.shardIndex = 0;
    config.shardCount = 2;
    config.checkpointEvery = 0; // only the final save hits the site
    std::string csv = scratch_.file("shardwrite.csv");

    // Every publication attempt fails, exhausting the backoff: the
    // cells all simulated, and the missing shard CSV is reported as a
    // single structured save failure, not a crashed campaign.
    faults().arm(FaultSite::ShardWrite, 0);
    CampaignReport report = CampaignRunner(config).runReport(csv);
    faults().reset();

    EXPECT_EQ(report.cellsCompleted, shardCellsOfPair(0, 2, 0, 55));
    ASSERT_EQ(report.failures.size(), 1u);
    EXPECT_EQ(report.failures[0].layout, "save");
    EXPECT_FALSE(readShardFile(csv).ok());

    // A clean rerun recomputes and republishes a valid shard.
    CampaignReport retry = CampaignRunner(config).runReport(csv);
    EXPECT_TRUE(retry.allOk()) << retry.summary();
    EXPECT_TRUE(readShardFile(csv).ok());
}

TEST_F(CampaignShardTest, ShardTimeoutSurfacesHungCellsAsFailures)
{
    // The watchdog drill on the sharded path: an impossible per-cell
    // budget makes every owned cell fail with a Timeout error — the
    // campaign completes, nothing hangs, and the failures are
    // attributed to cells, not the process.
    CampaignConfig config = shardTestConfig();
    config.jobs = 2;
    config.platforms = {cpu::sandyBridge()};
    config.shardIndex = 0;
    config.shardCount = 2;
    config.cellTimeoutSeconds = 1e-9;
    CampaignReport report = CampaignRunner(config).runReport();

    ASSERT_FALSE(report.allOk());
    EXPECT_EQ(report.cellsCompleted, 0u);
    EXPECT_EQ(report.failures.size(), shardCellsOfPair(0, 2, 0, 55));
    for (const auto &failure : report.failures)
        EXPECT_EQ(failure.error.category(), ErrorCategory::Timeout);
}

TEST_F(CampaignShardTest, TruncationMatrixRejectsEveryTornPrefix)
{
    // The torn-trailer matrix: a shard killed mid-write can leave a
    // prefix of any length. Every proper prefix must be rejected as a
    // structured error — never accepted, never mis-diagnosed as row
    // corruption or a foreign campaign, never a crash. The trailer
    // region (order lines + manifest commit marker) is swept at every
    // single byte length, since that is where a torn manifest line
    // used to parse as a "valid" shorter hex hash; the row region is
    // sampled.
    CampaignConfig config = shardTestConfig();
    config.jobs = 2;
    std::string shard_csv = runShard(config, 0, 2, "matrix_shard.csv");
    const std::string complete = slurp(shard_csv);

    auto trailer = complete.find("# mosaic-shard-order:");
    ASSERT_NE(trailer, std::string::npos);
    ASSERT_TRUE(readShardFile(shard_csv).ok());

    std::vector<std::size_t> lengths;
    for (std::size_t cut = 0; cut < complete.size(); cut += 97)
        lengths.push_back(cut); // sampled row region (and prefix)
    for (std::size_t cut = trailer; cut < complete.size(); ++cut)
        lengths.push_back(cut); // every byte of the trailer region

    std::string torn_csv = scratch_.file("matrix_torn.csv");
    for (std::size_t cut : lengths) {
        ASSERT_TRUE(
            writeFileAtomic(torn_csv, complete.substr(0, cut)).ok());
        auto torn = readShardFile(torn_csv);
        ASSERT_FALSE(torn.ok()) << "prefix of " << cut
                                << " bytes parsed as a valid shard";
        EXPECT_EQ(torn.error().category(), ErrorCategory::Corrupt)
            << "cut=" << cut << ": " << torn.error().str();
        const std::string message = torn.error().str();
        if (cut == 0 || complete[cut - 1] != '\n') {
            // Mid-line tear: diagnosed as truncation, not as CRC/row
            // corruption or a config mismatch.
            EXPECT_NE(message.find("truncated"), std::string::npos)
                << "cut=" << cut << ": " << message;
        } else {
            // Tear at a line boundary: complete lines but no commit
            // marker -> reported as a missing manifest.
            EXPECT_NE(message.find("manifest"), std::string::npos)
                << "cut=" << cut << ": " << message;
        }
    }

    // The untouched file still round-trips after the sweep.
    ASSERT_TRUE(writeFileAtomic(torn_csv, complete).ok());
    EXPECT_TRUE(readShardFile(torn_csv).ok());
}
