/**
 * @file
 * Sampled campaigns: the est_err CSV column round-trips, the sampled
 * dataset is byte-identical across jobs/fused/shard scheduling, the
 * resume format guard keeps full-replay and sampled caches apart, and
 * sampling actually replays fewer records than the full campaign.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <memory>
#include <stdexcept>

#include "common/scratch_dir.hh"
#include "experiments/campaign.hh"
#include "experiments/shard.hh"
#include "support/random.hh"

using namespace mosaic;
using namespace mosaic::exp;

namespace
{

/** Same tiny TLB-sensitive workload the other campaign tests use. */
class TinyWorkload : public workloads::Workload
{
  public:
    workloads::WorkloadInfo
    info() const override
    {
        return {"test", "tiny"};
    }

    Bytes heapPoolSize() const override { return 24_MiB; }

    trace::MemoryTrace
    generateTrace() const override
    {
        trace::MemoryTrace trace;
        Rng rng(99);
        VirtAddr base = alloc::PoolAddresses::heapBase;
        for (int i = 0; i < 12000; ++i)
            trace.add(base + alignDown(rng.nextBounded(24_MiB), 8), 2,
                      false);
        return trace;
    }
};

CampaignConfig
sampledConfig()
{
    CampaignConfig config;
    config.verbose = false;
    config.workloads = {"test/tiny"};
    config.workloadFactory =
        [](const std::string &label) -> std::unique_ptr<workloads::Workload> {
        if (label == "test/tiny")
            return std::make_unique<TinyWorkload>();
        throw std::runtime_error("unknown test workload: " + label);
    };
    config.sampling.mode = sampling::SampleMode::Interval;
    config.sampling.intervalRecords = 1024; // 12 intervals over 12000
    config.sampling.clusters = 3;
    config.sampling.warmupRecords = 256;
    return config;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

class CampaignSampledTest : public ::testing::Test
{
  protected:
    test::ScratchDir scratch_;
};

} // namespace

TEST_F(CampaignSampledTest, EmitsEstErrColumnAndRoundTrips)
{
    CampaignConfig config = sampledConfig();
    config.jobs = 2;
    std::string csv = scratch_.file("sampled.csv");
    CampaignReport report = CampaignRunner(config).runReport(csv);
    ASSERT_TRUE(report.allOk()) << report.summary();
    EXPECT_EQ(report.cellsCompleted, 3u * 55u);
    EXPECT_TRUE(report.dataset.estErrColumn());
    EXPECT_STREQ(report.dataset.csvHeader(), datasetCsvHeaderEstErr());

    // The serialized header is the est_err variant and every row
    // parses back with its error bound intact (to the emitter's fixed
    // 6-decimal precision).
    Dataset loaded = Dataset::load(csv);
    EXPECT_TRUE(loaded.estErrColumn());
    EXPECT_EQ(loaded.totalRuns(), report.dataset.totalRuns());
    for (const auto &platform : report.dataset.platforms()) {
        const auto &fresh = report.dataset.runs(platform, "test/tiny");
        const auto &reloaded = loaded.runs(platform, "test/tiny");
        ASSERT_EQ(fresh.size(), reloaded.size());
        for (std::size_t i = 0; i < fresh.size(); ++i) {
            EXPECT_EQ(fresh[i].layout, reloaded[i].layout);
            EXPECT_EQ(fresh[i].result.runtimeCycles,
                      reloaded[i].result.runtimeCycles);
            EXPECT_NEAR(fresh[i].estErr, reloaded[i].estErr, 1e-6);
            EXPECT_GE(reloaded[i].estErr, 0.0);
        }
    }
}

TEST_F(CampaignSampledTest, ByteIdenticalAcrossJobsAndFused)
{
    CampaignConfig serial = sampledConfig();
    serial.jobs = 1;
    std::string serial_csv = scratch_.file("jobs1.csv");
    CampaignReport a = CampaignRunner(serial).runReport(serial_csv);
    ASSERT_TRUE(a.allOk()) << a.summary();

    // Wide + fused: the fused flag is inert under sampling (per-cell
    // partial passes), so the CSV must still match byte for byte.
    CampaignConfig wide = sampledConfig();
    wide.jobs = 8;
    wide.fused = true;
    std::string wide_csv = scratch_.file("jobs8_fused.csv");
    CampaignReport b = CampaignRunner(wide).runReport(wide_csv);
    ASSERT_TRUE(b.allOk()) << b.summary();

    std::string serial_bytes = slurp(serial_csv);
    ASSERT_FALSE(serial_bytes.empty());
    EXPECT_EQ(serial_bytes, slurp(wide_csv));
}

TEST_F(CampaignSampledTest, TwoShardMergeIsByteIdenticalToUnsharded)
{
    CampaignConfig config = sampledConfig();
    config.jobs = 4;
    std::string full_csv = scratch_.file("full.csv");
    CampaignReport full = CampaignRunner(config).runReport(full_csv);
    ASSERT_TRUE(full.allOk()) << full.summary();

    auto runShard = [&](unsigned index, const char *name) {
        CampaignConfig shard_config = config;
        shard_config.shardIndex = index;
        shard_config.shardCount = 2;
        std::string csv = scratch_.file(name);
        CampaignReport report =
            CampaignRunner(shard_config).runReport(csv);
        EXPECT_TRUE(report.allOk()) << report.summary();
        return csv;
    };
    auto a = readShardFile(runShard(0, "shard0.csv"));
    auto b = readShardFile(runShard(1, "shard1.csv"));
    ASSERT_TRUE(a.ok()) << a.error().str();
    ASSERT_TRUE(b.ok()) << b.error().str();
    EXPECT_TRUE(a.value().estErrColumn);
    EXPECT_TRUE(b.value().estErrColumn);

    auto merged = mergeShards({a.value(), b.value()}, false);
    ASSERT_TRUE(merged.ok()) << merged.error().str();
    EXPECT_TRUE(merged.value().missing.empty());
    EXPECT_EQ(merged.value().rowsMerged, 3u * 55u);
    EXPECT_EQ(merged.value().csv, slurp(full_csv));
}

TEST_F(CampaignSampledTest, ResumeFormatGuardKeepsFormatsApart)
{
    // A full-replay cache must not seed a sampled campaign (and the
    // sampled run must still produce the complete sampled dataset).
    CampaignConfig classic = sampledConfig();
    classic.sampling.mode = sampling::SampleMode::Off;
    std::string csv = scratch_.file("cache.csv");
    CampaignReport full = CampaignRunner(classic).runReport(csv);
    ASSERT_TRUE(full.allOk()) << full.summary();
    EXPECT_FALSE(full.dataset.estErrColumn());

    CampaignConfig sampled = sampledConfig();
    CampaignReport resumed = CampaignRunner(sampled).runReport(csv);
    ASSERT_TRUE(resumed.allOk()) << resumed.summary();
    EXPECT_EQ(resumed.cellsResumed, 0u);
    EXPECT_EQ(resumed.cellsCompleted, 3u * 55u);
    Dataset reloaded = Dataset::load(csv);
    EXPECT_TRUE(reloaded.estErrColumn());
}

TEST_F(CampaignSampledTest, SampledRunReplaysFewerRecords)
{
    const std::uint64_t replayed_before = static_cast<std::uint64_t>(
        metrics().counter("replay/sampled_records_replayed"));
    const std::uint64_t skipped_before = static_cast<std::uint64_t>(
        metrics().counter("replay/sampled_records_skipped"));

    CampaignConfig config = sampledConfig();
    config.jobs = 2;
    CampaignReport report = CampaignRunner(config).runReport();
    ASSERT_TRUE(report.allOk()) << report.summary();

    const std::uint64_t replayed =
        static_cast<std::uint64_t>(
            metrics().counter("replay/sampled_records_replayed")) -
        replayed_before;
    const std::uint64_t skipped =
        static_cast<std::uint64_t>(
            metrics().counter("replay/sampled_records_skipped")) -
        skipped_before;
    EXPECT_GT(replayed, 0u);
    EXPECT_GT(skipped, replayed); // most of every trace is skipped
    EXPECT_EQ(metrics().gauge("campaign/sampled"), 1.0);
}

TEST_F(CampaignSampledTest, CoWorkloadIsRejectedAsConfigError)
{
    CampaignConfig config = sampledConfig();
    config.coWorkload = "test/tiny";
    config.os.memFrames = 4096; // co-workload precondition
    CampaignReport report = CampaignRunner(config).runReport();
    ASSERT_EQ(report.failures.size(), 1u);
    EXPECT_EQ(report.failures[0].error.category(),
              ErrorCategory::Config);
    EXPECT_EQ(report.cellsCompleted, 0u);
}
