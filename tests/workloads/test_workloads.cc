/**
 * @file
 * Tests for the benchmark surrogates and the registry.
 */

#include <gtest/gtest.h>

#include "trace/miss_profile.hh"
#include "workloads/gapbs.hh"
#include "workloads/graph500.hh"
#include "workloads/gups.hh"
#include "workloads/registry.hh"
#include "workloads/spec.hh"
#include "workloads/xsbench.hh"

using namespace mosaic;
using namespace mosaic::workloads;

namespace
{

/** Tiny variants so tests run in milliseconds. */
GupsParams
tinyGups()
{
    GupsParams params;
    params.tableBytes = 16_MiB;
    params.updates = 5000;
    return params;
}

GapbsParams
tinyGapbs(GapbsKernel kernel)
{
    GapbsParams params;
    params.kernel = kernel;
    params.graph = twitterGraph(1u << 14);
    params.refBudget = 20000;
    return params;
}

} // namespace

TEST(Registry, NineteenPaperBenchmarks)
{
    auto labels = workloadLabels();
    EXPECT_EQ(labels.size(), 19u);
    // Spot-check the Table 5 entries.
    for (const char *expected :
         {"gups/8GB", "gups/16GB", "gups/32GB", "graph500/2GB",
          "spec06/mcf", "spec06/omnetpp", "spec17/omnetpp_s",
          "spec17/xalancbmk_s", "xsbench/16GB", "gapbs/bc-twitter",
          "gapbs/pr-twitter", "gapbs/bfs-road", "gapbs/sssp-web"}) {
        EXPECT_NE(std::find(labels.begin(), labels.end(), expected),
                  labels.end())
            << expected;
    }
}

TEST(Registry, MakeWorkloadByLabel)
{
    auto workload = makeWorkload("spec06/mcf");
    EXPECT_EQ(workload->info().label(), "spec06/mcf");
    EXPECT_THROW(makeWorkload("nosuch/bench"), std::runtime_error);
}

TEST(Registry, LabelsMatchConstructedInfo)
{
    for (const auto &entry : workloadRegistry()) {
        auto workload = entry.make();
        EXPECT_EQ(workload->info().label(), entry.label);
    }
}

TEST(Gups, TraceIsDeterministicAndInPool)
{
    GupsWorkload gups(tinyGups());
    auto t1 = gups.generateTrace();
    auto t2 = gups.generateTrace();
    ASSERT_EQ(t1.size(), t2.size());
    EXPECT_EQ(t1.records()[100].vaddr, t2.records()[100].vaddr);

    VirtAddr base = gups.primaryPoolBase();
    Bytes size = gups.primaryPoolSize();
    for (const auto &record : t1.records()) {
        ASSERT_GE(record.vaddr, base);
        ASSERT_LT(record.vaddr, base + size);
    }
}

TEST(Gups, LoadStorePairsAtSameAddress)
{
    GupsWorkload gups(tinyGups());
    auto trace = gups.generateTrace();
    ASSERT_EQ(trace.size(), 2 * tinyGups().updates);
    for (std::size_t i = 0; i + 1 < trace.size(); i += 2) {
        EXPECT_FALSE(trace.records()[i].isWrite);
        EXPECT_TRUE(trace.records()[i + 1].isWrite);
        EXPECT_EQ(trace.records()[i].vaddr,
                  trace.records()[i + 1].vaddr);
    }
}

TEST(Gups, SpreadsAcrossTheTable)
{
    GupsWorkload gups(tinyGups());
    auto trace = gups.generateTrace();
    // With 5000 random updates over 16 MiB, at least a quarter of the
    // 4096 pages should be touched.
    EXPECT_GT(trace.uniquePages4k(), 1000u);
}

TEST(Graph500, UsesAnonPoolViaMmap)
{
    Graph500Params params;
    params.numVertices = 1u << 14;
    params.refBudget = 20000;
    Graph500Workload workload(params);
    EXPECT_EQ(workload.primaryPool(), PoolKind::Anon);

    auto trace = workload.generateTrace();
    EXPECT_GE(trace.size(), params.refBudget);
    VirtAddr base = alloc::PoolAddresses::anonBase;
    for (const auto &record : trace.records()) {
        ASSERT_GE(record.vaddr, base);
        ASSERT_LT(record.vaddr, base + workload.anonPoolSize());
    }
}

TEST(Graph500, BuildPhaseWritesSequentially)
{
    Graph500Params params;
    params.numVertices = 1u << 14;
    params.refBudget = 20000;
    Graph500Workload workload(params);
    auto trace = workload.generateTrace();
    // The first records are the CSR streaming stores.
    EXPECT_TRUE(trace.records()[0].isWrite);
    EXPECT_TRUE(trace.records()[1].isWrite);
    EXPECT_LT(trace.records()[0].vaddr, trace.records()[1].vaddr);
}

TEST(Gapbs, AllKernelsProduceBudgetedTraces)
{
    for (auto kernel : {GapbsKernel::Pr, GapbsKernel::Bfs,
                        GapbsKernel::Sssp, GapbsKernel::Bc}) {
        GapbsWorkload workload(tinyGapbs(kernel));
        auto trace = workload.generateTrace();
        EXPECT_GE(trace.size(), 15000u)
            << gapbsKernelName(kernel);
        EXPECT_LE(trace.size(), 25000u)
            << gapbsKernelName(kernel);
    }
}

TEST(Gapbs, LabelsMatchPaper)
{
    EXPECT_EQ(GapbsWorkload(gapbsPrTwitter()).info().label(),
              "gapbs/pr-twitter");
    EXPECT_EQ(GapbsWorkload(gapbsBfsRoad()).info().label(),
              "gapbs/bfs-road");
    EXPECT_EQ(GapbsWorkload(gapbsSsspWeb()).info().label(),
              "gapbs/sssp-web");
}

TEST(Gapbs, TraceWithinHeapPool)
{
    GapbsWorkload workload(tinyGapbs(GapbsKernel::Pr));
    auto trace = workload.generateTrace();
    VirtAddr base = workload.primaryPoolBase();
    Bytes size = workload.primaryPoolSize();
    for (const auto &record : trace.records()) {
        ASSERT_GE(record.vaddr, base);
        ASSERT_LT(record.vaddr, base + size);
    }
}

TEST(XsBench, BinarySearchPattern)
{
    XsBenchParams params;
    params.footprint = 16_MiB;
    params.refBudget = 10000;
    XsBenchWorkload workload(params);
    auto trace = workload.generateTrace();
    EXPECT_GE(trace.size(), params.refBudget);
    // Lookups include stores (the accumulator update).
    EXPECT_GT(trace.size() - trace.numLoads(), 0u);
}

TEST(Spec, McfChasesWholeArcArray)
{
    McfParams params;
    params.arcsBytes = 8_MiB;
    params.nodesBytes = 2_MiB;
    params.refBudget = 40000;
    McfWorkload workload(params);
    auto trace = workload.generateTrace();
    // The permutation walk should touch most arc pages.
    EXPECT_GT(trace.uniquePages4k(), 1500u);
}

TEST(Spec, OmnetppSuitesDiffer)
{
    OmnetppWorkload w06(spec06Omnetpp());
    OmnetppWorkload w17(spec17OmnetppS());
    EXPECT_EQ(w06.info().label(), "spec06/omnetpp");
    EXPECT_EQ(w17.info().label(), "spec17/omnetpp_s");
    EXPECT_GT(w17.heapPoolSize(), w06.heapPoolSize());
}

TEST(Spec, XalancHasHotTreeTop)
{
    XalancParams params;
    params.nodeArenaBytes = 16_MiB;
    params.stringBytes = 2_MiB;
    params.refBudget = 60000;
    XalancWorkload workload(params);
    auto trace = workload.generateTrace();

    // The DOM root's page is touched by every descent: it must be one
    // of the most frequent pages.
    std::uint64_t root_page = trace.records()[0].vaddr >> 12;
    std::uint64_t root_hits = 0;
    for (const auto &record : trace.records())
        root_hits += (record.vaddr >> 12) == root_page;
    EXPECT_GT(root_hits, trace.size() / 100);
}

TEST(Workload, MakeAllocConfigPlacesLayoutOnPrimaryPool)
{
    GupsWorkload gups(tinyGups());
    auto layout = alloc::MosaicLayout::uniform(gups.primaryPoolSize(),
                                               alloc::PageSize::Page2M);
    auto config = gups.makeAllocConfig(layout);
    EXPECT_GT(config.heapLayout.hugeCoverage(), 0.99);
    EXPECT_DOUBLE_EQ(config.anonLayout.hugeCoverage(), 0.0);

    Graph500Params g500;
    g500.numVertices = 1u << 14;
    Graph500Workload graph(g500);
    auto glayout = alloc::MosaicLayout::uniform(
        graph.primaryPoolSize(), alloc::PageSize::Page2M);
    auto gconfig = graph.makeAllocConfig(glayout);
    EXPECT_GT(gconfig.anonLayout.hugeCoverage(), 0.99);
    EXPECT_DOUBLE_EQ(gconfig.heapLayout.hugeCoverage(), 0.0);
}

TEST(Graph, DegreesMatchKind)
{
    SyntheticGraph road(roadGraph(1u << 12));
    for (std::uint64_t u = 0; u < road.numVertices(); u += 97)
        EXPECT_LE(road.degree(u), 4u);

    SyntheticGraph twitter(twitterGraph(1u << 14));
    // Power-law: maximum degree far above the mean.
    std::uint32_t max_degree = 0;
    for (std::uint64_t u = 0; u < twitter.numVertices(); ++u)
        max_degree = std::max(max_degree, twitter.degree(u));
    double avg = static_cast<double>(twitter.numEdges()) /
                 static_cast<double>(twitter.numVertices());
    EXPECT_GT(max_degree, avg * 10);
    EXPECT_NEAR(avg, twitter.params().avgDegree, 8.0);
}

TEST(Graph, NeighborsDeterministicAndInRange)
{
    SyntheticGraph graph(twitterGraph(1u << 14));
    for (std::uint64_t u = 0; u < graph.numVertices(); u += 311) {
        for (std::uint32_t i = 0; i < std::min(graph.degree(u), 8u);
             ++i) {
            std::uint64_t v1 = graph.neighbor(u, i);
            std::uint64_t v2 = graph.neighbor(u, i);
            EXPECT_EQ(v1, v2);
            EXPECT_LT(v1, graph.numVertices());
        }
    }
}

TEST(Graph, OffsetsArePrefixSums)
{
    SyntheticGraph graph(webGraph(1u << 12));
    std::uint64_t acc = 0;
    for (std::uint64_t u = 0; u < graph.numVertices(); ++u) {
        EXPECT_EQ(graph.offset(u), acc);
        acc += graph.degree(u);
    }
    EXPECT_EQ(graph.numEdges(), acc);
}

TEST(Graph, RoadNeighborsAreGridAdjacent)
{
    SyntheticGraph road(roadGraph(1u << 12));
    std::uint64_t width = 0;
    // Recover the grid width from vertex 0's second neighbour.
    for (std::uint32_t i = 0; i < road.degree(0); ++i) {
        std::uint64_t v = road.neighbor(0, i);
        if (v > 1)
            width = v;
    }
    ASSERT_GT(width, 0u);
    for (std::uint64_t u = width + 1; u < road.numVertices() - width - 1;
         u += 131) {
        for (std::uint32_t i = 0; i < road.degree(u); ++i) {
            std::uint64_t v = road.neighbor(u, i);
            std::uint64_t diff = v > u ? v - u : u - v;
            EXPECT_TRUE(diff == 1 || diff == width)
                << "u=" << u << " v=" << v;
        }
    }
}
