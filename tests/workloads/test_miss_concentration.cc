/**
 * @file
 * Tests for the miss-concentration structure the sliding-window
 * heuristic exploits (Section VI-B): "for most workloads, TLB misses
 * are mostly concentrated in a relatively small memory region" — e.g.
 * 80% of graph500's misses come from a small slice of its space —
 * while uniform-access workloads like gups have no such hot region.
 */

#include <gtest/gtest.h>

#include "trace/miss_profile.hh"
#include "workloads/gapbs.hh"
#include "workloads/graph500.hh"
#include "workloads/gups.hh"
#include "workloads/spec.hh"

using namespace mosaic;
using namespace mosaic::workloads;

namespace
{

/** Fraction of the pool the X-percent hot region occupies. */
double
hotRegionShare(const Workload &workload, double fraction)
{
    auto trace = workload.generateTrace();
    trace::MissProfile profile(trace, workload.primaryPoolBase(),
                               workload.primaryPoolSize());
    auto hot = profile.findHotRegion(fraction);
    return static_cast<double>(hot.length) /
           static_cast<double>(workload.primaryPoolSize());
}

} // namespace

TEST(MissConcentration, Graph500MissesConcentrateOnHubs)
{
    Graph500Params params;
    params.numVertices = 1u << 16;
    params.refBudget = 120000;
    Graph500Workload workload(params);
    // 60% of the misses fit in well under half the pool: the hub
    // adjacency runs dominate the traffic.
    EXPECT_LT(hotRegionShare(workload, 0.6), 0.5);
}

TEST(MissConcentration, XalancTreeTopIsHot)
{
    XalancParams params;
    params.nodeArenaBytes = 24_MiB;
    params.stringBytes = 4_MiB;
    params.refBudget = 120000;
    XalancWorkload workload(params);
    // Every descent crosses the top levels: strong concentration.
    EXPECT_LT(hotRegionShare(workload, 0.4), 0.55);
}

TEST(MissConcentration, GupsIsUniform)
{
    GupsParams params;
    params.tableBytes = 48_MiB;
    params.updates = 60000;
    GupsWorkload workload(params);
    // Uniform random access: covering X% of the misses takes ~X% of
    // the pool; there is no hot region to exploit.
    double share = hotRegionShare(workload, 0.6);
    EXPECT_GT(share, 0.45);
    EXPECT_LT(share, 0.75);
}

TEST(MissConcentration, TwitterPrHammersHubRanks)
{
    GapbsParams params = gapbsPrTwitter();
    params.graph = twitterGraph(1u << 15);
    params.refBudget = 120000;
    GapbsWorkload workload(params);
    EXPECT_LT(hotRegionShare(workload, 0.6), 0.6);
}

TEST(MissConcentration, HotRegionGrowsWithFraction)
{
    Graph500Params params;
    params.numVertices = 1u << 16;
    params.refBudget = 120000;
    Graph500Workload workload(params);
    double s20 = hotRegionShare(workload, 0.2);
    double s80 = hotRegionShare(workload, 0.8);
    EXPECT_LE(s20, s80);
}
