/**
 * @file
 * Tests for polynomial feature expansion.
 */

#include <gtest/gtest.h>

#include "stats/poly_features.hh"

using namespace mosaic;
using stats::PolynomialFeatures;

TEST(PolyFeatures, CountMatchesBinomialFormula)
{
    // C(inputs + degree, degree)
    EXPECT_EQ(stats::polynomialFeatureCount(1, 3), 4u);
    EXPECT_EQ(stats::polynomialFeatureCount(3, 3), 20u);
    EXPECT_EQ(stats::polynomialFeatureCount(3, 2), 10u);
    EXPECT_EQ(stats::polynomialFeatureCount(2, 1), 3u);
}

TEST(PolyFeatures, MosmodelHasTwentyFeatures)
{
    // The paper: "a third-order polynomial in three variables has 20
    // parameters".
    PolynomialFeatures features(3, 3);
    EXPECT_EQ(features.numFeatures(), 20u);
}

TEST(PolyFeatures, ConstantFeatureFirst)
{
    PolynomialFeatures features(2, 2);
    stats::Vector out = features.expand({3.0, 5.0});
    EXPECT_DOUBLE_EQ(out[0], 1.0);
}

TEST(PolyFeatures, SingleInputPowers)
{
    PolynomialFeatures features(1, 3);
    stats::Vector out = features.expand({2.0});
    ASSERT_EQ(out.size(), 4u);
    EXPECT_DOUBLE_EQ(out[0], 1.0);
    EXPECT_DOUBLE_EQ(out[1], 2.0);
    EXPECT_DOUBLE_EQ(out[2], 4.0);
    EXPECT_DOUBLE_EQ(out[3], 8.0);
}

TEST(PolyFeatures, CrossTermsPresent)
{
    PolynomialFeatures features(2, 2);
    // Features: 1, x, y, x^2, xy, y^2 (order: by degree then lexico).
    stats::Vector out = features.expand({2.0, 3.0});
    ASSERT_EQ(out.size(), 6u);
    double product = 1.0;
    bool found_xy = false;
    for (std::size_t i = 0; i < out.size(); ++i) {
        const auto &exps = features.exponentsOf(i);
        if (exps[0] == 1 && exps[1] == 1) {
            found_xy = true;
            EXPECT_DOUBLE_EQ(out[i], 6.0);
        }
        (void)product;
    }
    EXPECT_TRUE(found_xy);
}

TEST(PolyFeatures, ExponentTotalsBounded)
{
    PolynomialFeatures features(3, 3);
    for (std::size_t i = 0; i < features.numFeatures(); ++i) {
        unsigned total = 0;
        for (unsigned e : features.exponentsOf(i))
            total += e;
        EXPECT_LE(total, 3u);
    }
}

TEST(PolyFeatures, FeaturesAreUnique)
{
    PolynomialFeatures features(3, 3);
    for (std::size_t i = 0; i < features.numFeatures(); ++i)
        for (std::size_t j = i + 1; j < features.numFeatures(); ++j)
            EXPECT_NE(features.exponentsOf(i), features.exponentsOf(j));
}

TEST(PolyFeatures, ExpandMatrixRowwise)
{
    PolynomialFeatures features(2, 1);
    stats::Matrix inputs = stats::Matrix::fromRows({{1, 2}, {3, 4}});
    stats::Matrix out = features.expandMatrix(inputs);
    EXPECT_EQ(out.rows(), 2u);
    EXPECT_EQ(out.cols(), 3u); // 1, x, y
    EXPECT_DOUBLE_EQ(out(1, 0), 1.0);
}

TEST(PolyFeatures, FeatureNames)
{
    PolynomialFeatures features(3, 3);
    std::vector<std::string> names = {"H", "M", "C"};
    EXPECT_EQ(features.featureName(0, names), "1");
    // Find the H*C^2 feature and check its name.
    bool found = false;
    for (std::size_t i = 0; i < features.numFeatures(); ++i) {
        const auto &exps = features.exponentsOf(i);
        if (exps[0] == 1 && exps[1] == 0 && exps[2] == 2) {
            EXPECT_EQ(features.featureName(i, names), "H*C^2");
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

class PolyFeatureCountTest
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(PolyFeatureCountTest, MatchesClosedForm)
{
    auto [inputs, degree] = GetParam();
    PolynomialFeatures features(inputs, degree);
    EXPECT_EQ(features.numFeatures(),
              stats::polynomialFeatureCount(inputs, degree));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PolyFeatureCountTest,
    ::testing::Values(std::make_pair(1u, 1u), std::make_pair(1u, 4u),
                      std::make_pair(2u, 3u), std::make_pair(3u, 1u),
                      std::make_pair(3u, 2u), std::make_pair(3u, 3u),
                      std::make_pair(4u, 2u), std::make_pair(4u, 3u)));
