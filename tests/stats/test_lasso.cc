/**
 * @file
 * Tests for the Lasso coordinate-descent fitter.
 */

#include <gtest/gtest.h>

#include <cmath>

#include <limits>

#include "stats/lasso.hh"
#include "support/fault_injector.hh"
#include "support/random.hh"

using namespace mosaic;
using stats::LassoConfig;
using stats::Matrix;
using stats::Vector;

namespace
{

/** y = 2 + 3*x0 - 1.5*x2 with x1 pure noise. */
void
makeSparseProblem(std::size_t n, Matrix &x, Vector &y)
{
    Rng rng(77);
    x = Matrix(n, 3);
    y.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        double x0 = rng.nextDouble() * 10;
        double x1 = rng.nextDouble() * 10;
        double x2 = rng.nextDouble() * 10;
        x(i, 0) = x0;
        x(i, 1) = x1;
        x(i, 2) = x2;
        y[i] = 2.0 + 3.0 * x0 - 1.5 * x2;
    }
}

} // namespace

TEST(Lasso, RecoversSparseModel)
{
    Matrix x;
    Vector y;
    makeSparseProblem(60, x, y);
    auto result = stats::fitLasso(x, y);
    EXPECT_NEAR(result.coefficients[0], 3.0, 0.05);
    EXPECT_NEAR(result.coefficients[2], -1.5, 0.05);
    EXPECT_NEAR(result.coefficients[1], 0.0, 0.05);
    EXPECT_NEAR(result.intercept, 2.0, 0.5);
}

TEST(Lasso, PredictionMatchesGenerator)
{
    Matrix x;
    Vector y;
    makeSparseProblem(60, x, y);
    auto result = stats::fitLasso(x, y);
    for (std::size_t i = 0; i < x.rows(); ++i) {
        double predicted = result.predict(x.row(i));
        EXPECT_NEAR(predicted, y[i], std::fabs(y[i]) * 0.02 + 0.5);
    }
}

TEST(Lasso, StrongPenaltyZeroesEverything)
{
    Matrix x;
    Vector y;
    makeSparseProblem(60, x, y);
    LassoConfig config;
    config.lambdaRatio = 1.0; // lambda = lambda_max
    auto result = stats::fitLasso(x, y, config);
    EXPECT_EQ(result.numZeroCoefficients, 3u);
    // Prediction degenerates to the mean of y.
    double mean = 0;
    for (double v : y)
        mean += v;
    mean /= static_cast<double>(y.size());
    EXPECT_NEAR(result.predict({1, 1, 1}), mean, 1e-6);
}

TEST(Lasso, PenaltyMonotonicallyIncreasesSparsity)
{
    Matrix x;
    Vector y;
    makeSparseProblem(80, x, y);
    std::size_t previous = 0;
    for (double ratio : {1e-4, 1e-2, 0.3, 1.0}) {
        LassoConfig config;
        config.lambdaRatio = ratio;
        auto result = stats::fitLasso(x, y, config);
        EXPECT_GE(result.numZeroCoefficients, previous);
        previous = result.numZeroCoefficients;
    }
}

TEST(Lasso, HandlesConstantColumns)
{
    Rng rng(5);
    Matrix x(30, 2);
    Vector y(30);
    for (std::size_t i = 0; i < 30; ++i) {
        x(i, 0) = 4.2; // constant
        x(i, 1) = rng.nextDouble();
        y[i] = 10.0 * x(i, 1) + 1.0;
    }
    auto result = stats::fitLasso(x, y);
    EXPECT_NEAR(result.coefficients[1], 10.0, 0.1);
    EXPECT_DOUBLE_EQ(result.coefficients[0], 0.0);
}

TEST(Lasso, ScaleInvarianceAcrossFeatureMagnitudes)
{
    // One feature in units of 1e9 (like walk cycles), one in 1e2.
    Rng rng(9);
    Matrix x(50, 2);
    Vector y(50);
    for (std::size_t i = 0; i < 50; ++i) {
        double big = rng.nextDouble() * 1e9;
        double small = rng.nextDouble() * 1e2;
        x(i, 0) = big;
        x(i, 1) = small;
        y[i] = 3e-6 * big + 2.0 * small + 5.0;
    }
    auto result = stats::fitLasso(x, y);
    for (std::size_t i = 0; i < 50; ++i)
        EXPECT_NEAR(result.predict(x.row(i)), y[i],
                    std::fabs(y[i]) * 0.02 + 1.0);
}

TEST(Lasso, ConvergesWithinIterationBudget)
{
    Matrix x;
    Vector y;
    makeSparseProblem(60, x, y);
    auto result = stats::fitLasso(x, y);
    EXPECT_LT(result.iterations, 100000u);
}

TEST(Lasso, RejectsBadInput)
{
    Matrix x(4, 2);
    Vector y(3);
    EXPECT_THROW(stats::fitLasso(x, y), std::logic_error);
}

TEST(Lasso, ReportsConvergenceOnEasyProblem)
{
    Matrix x;
    Vector y;
    makeSparseProblem(60, x, y);
    auto result = stats::fitLassoChecked(x, y);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result.value().converged);
}

TEST(Lasso, FlagsNonConvergenceInsteadOfFailing)
{
    Matrix x;
    Vector y;
    makeSparseProblem(60, x, y);
    LassoConfig config;
    config.maxIterations = 1; // starve the descent
    config.tolerance = 1e-14;
    auto result = stats::fitLassoChecked(x, y, config);
    ASSERT_TRUE(result.ok()); // usable coefficients, just suspect
    EXPECT_FALSE(result.value().converged);
}

TEST(Lasso, NanInDesignMatrixIsNumericError)
{
    Matrix x;
    Vector y;
    makeSparseProblem(30, x, y);
    x(7, 1) = std::numeric_limits<double>::quiet_NaN();
    auto result = stats::fitLassoChecked(x, y);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().category(), ErrorCategory::Numeric);
    // The error pinpoints the bad cell for the postmortem.
    EXPECT_NE(result.error().message().find("row 7"), std::string::npos);
    EXPECT_THROW(stats::fitLasso(x, y), std::runtime_error);
}

TEST(Lasso, InfInTargetIsNumericError)
{
    Matrix x;
    Vector y;
    makeSparseProblem(30, x, y);
    y[3] = std::numeric_limits<double>::infinity();
    auto result = stats::fitLassoChecked(x, y);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().category(), ErrorCategory::Numeric);
}

TEST(Lasso, InjectedNanFaultIsCaught)
{
    Matrix x;
    Vector y;
    makeSparseProblem(30, x, y);

    faults().reset();
    faults().arm(FaultSite::LassoNan, 1);
    auto poisoned = stats::fitLassoChecked(x, y);
    faults().reset();

    ASSERT_FALSE(poisoned.ok());
    EXPECT_EQ(poisoned.error().category(), ErrorCategory::Numeric);

    // The caller's matrix is not mutated by the injector.
    auto clean = stats::fitLassoChecked(x, y);
    EXPECT_TRUE(clean.ok());
}
