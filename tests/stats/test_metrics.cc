/**
 * @file
 * Tests for the paper's error metrics, R^2, scaler, and K-fold splits.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "stats/kfold.hh"
#include "stats/metrics.hh"
#include "stats/scaler.hh"

using namespace mosaic;
using stats::Vector;

TEST(Metrics, AbsoluteRelativeError)
{
    EXPECT_DOUBLE_EQ(stats::absoluteRelativeError(100, 110), 0.1);
    EXPECT_DOUBLE_EQ(stats::absoluteRelativeError(100, 90), 0.1);
    EXPECT_DOUBLE_EQ(stats::absoluteRelativeError(100, 100), 0.0);
}

TEST(Metrics, MaxAbsRelError)
{
    Vector measured = {100, 200, 400};
    Vector predicted = {110, 190, 400};
    EXPECT_DOUBLE_EQ(stats::maxAbsRelError(measured, predicted), 0.1);
}

TEST(Metrics, GeoMeanIsGeometric)
{
    Vector measured = {100, 100};
    Vector predicted = {110, 140}; // errors 0.1 and 0.4
    double expected = std::sqrt(0.1 * 0.4);
    EXPECT_NEAR(stats::geoMeanAbsRelError(measured, predicted), expected,
                1e-12);
}

TEST(Metrics, GeoMeanFloorsZeroErrors)
{
    Vector measured = {100, 100};
    Vector predicted = {100, 120}; // one exact sample
    double value = stats::geoMeanAbsRelError(measured, predicted);
    EXPECT_GT(value, 0.0);
    EXPECT_NEAR(value, std::sqrt(1e-6 * 0.2), 1e-9);
}

TEST(Metrics, MeanAndStdDev)
{
    Vector values = {2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_DOUBLE_EQ(stats::mean(values), 5.0);
    EXPECT_DOUBLE_EQ(stats::stdDev(values), 2.0);
}

TEST(Metrics, RSquaredPerfectAndMeanPredictor)
{
    Vector measured = {1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(stats::rSquared(measured, measured), 1.0);
    Vector mean_pred(4, 2.5);
    EXPECT_NEAR(stats::rSquared(measured, mean_pred), 0.0, 1e-12);
}

TEST(Metrics, PearsonCorrelation)
{
    Vector a = {1, 2, 3, 4};
    Vector b = {2, 4, 6, 8};
    EXPECT_NEAR(stats::pearson(a, b), 1.0, 1e-12);
    Vector c = {8, 6, 4, 2};
    EXPECT_NEAR(stats::pearson(a, c), -1.0, 1e-12);
}

TEST(Scaler, ZeroMeanUnitVariance)
{
    stats::Matrix data = stats::Matrix::fromRows(
        {{1, 100}, {2, 200}, {3, 300}, {4, 400}});
    stats::StandardScaler scaler;
    stats::Matrix out = scaler.fitTransform(data);
    for (std::size_t c = 0; c < 2; ++c) {
        double sum = 0, sq = 0;
        for (std::size_t r = 0; r < 4; ++r) {
            sum += out(r, c);
            sq += out(r, c) * out(r, c);
        }
        EXPECT_NEAR(sum, 0.0, 1e-12);
        EXPECT_NEAR(sq / 4.0, 1.0, 1e-12);
    }
}

TEST(Scaler, ConstantColumnSurvives)
{
    stats::Matrix data = stats::Matrix::fromRows({{5, 1}, {5, 2}, {5, 3}});
    stats::StandardScaler scaler;
    stats::Matrix out = scaler.fitTransform(data);
    for (std::size_t r = 0; r < 3; ++r)
        EXPECT_DOUBLE_EQ(out(r, 0), 0.0);
}

TEST(KFold, PartitionIsDisjointAndComplete)
{
    auto splits = stats::makeKFoldSplits(54, 6);
    ASSERT_EQ(splits.size(), 6u);
    std::set<std::size_t> all_test;
    for (const auto &split : splits) {
        EXPECT_EQ(split.testIndices.size(), 9u);
        EXPECT_EQ(split.trainIndices.size(), 45u);
        for (auto index : split.testIndices) {
            EXPECT_TRUE(all_test.insert(index).second)
                << "index " << index << " in two test folds";
            // Index must not be in its own training set.
            EXPECT_EQ(std::count(split.trainIndices.begin(),
                                 split.trainIndices.end(), index),
                      0);
        }
    }
    EXPECT_EQ(all_test.size(), 54u);
}

TEST(KFold, UnevenSizesDifferByAtMostOne)
{
    auto splits = stats::makeKFoldSplits(10, 3);
    std::size_t lo = 10, hi = 0;
    for (const auto &split : splits) {
        lo = std::min(lo, split.testIndices.size());
        hi = std::max(hi, split.testIndices.size());
    }
    EXPECT_LE(hi - lo, 1u);
}

TEST(KFold, DeterministicPerSeed)
{
    auto a = stats::makeKFoldSplits(20, 4, 7);
    auto b = stats::makeKFoldSplits(20, 4, 7);
    auto c = stats::makeKFoldSplits(20, 4, 8);
    EXPECT_EQ(a[0].testIndices, b[0].testIndices);
    EXPECT_NE(a[0].testIndices, c[0].testIndices);
}

TEST(KFold, RejectsDegenerateRequests)
{
    EXPECT_THROW(stats::makeKFoldSplits(3, 4), std::logic_error);
    EXPECT_THROW(stats::makeKFoldSplits(10, 1), std::logic_error);
}
