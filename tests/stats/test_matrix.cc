/**
 * @file
 * Tests for the dense matrix type and the Householder-QR solver.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/matrix.hh"
#include "support/random.hh"

using namespace mosaic;
using stats::Matrix;
using stats::Vector;

TEST(Matrix, ConstructionAndIndexing)
{
    Matrix m(2, 3);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    m(1, 2) = 5.0;
    EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
    EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(Matrix, FromRowsAndTranspose)
{
    Matrix m = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
    Matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
    EXPECT_DOUBLE_EQ(t(0, 0), 1.0);
}

TEST(Matrix, Identity)
{
    Matrix eye = Matrix::identity(3);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(eye(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, MultiplyMatrix)
{
    Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
    Matrix b = Matrix::fromRows({{5, 6}, {7, 8}});
    Matrix c = a.multiply(b);
    EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyVector)
{
    Matrix a = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
    Vector v = {1, 0, -1};
    Vector out = a.multiply(v);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_DOUBLE_EQ(out[0], -2.0);
    EXPECT_DOUBLE_EQ(out[1], -2.0);
}

TEST(Matrix, RowAndColExtraction)
{
    Matrix a = Matrix::fromRows({{1, 2}, {3, 4}, {5, 6}});
    Vector row = a.row(1);
    Vector col = a.col(0);
    EXPECT_EQ(row, (Vector{3, 4}));
    EXPECT_EQ(col, (Vector{1, 3, 5}));
}

TEST(VectorOps, DotAndNorm)
{
    EXPECT_DOUBLE_EQ(stats::dot({1, 2, 3}, {4, 5, 6}), 32.0);
    EXPECT_DOUBLE_EQ(stats::norm2({3, 4}), 5.0);
}

TEST(LeastSquares, ExactSquareSystem)
{
    // 2x + y = 5; x - y = 1  =>  x = 2, y = 1
    Matrix a = Matrix::fromRows({{2, 1}, {1, -1}});
    Vector b = {5, 1};
    Vector x = stats::solveLeastSquares(a, b);
    EXPECT_NEAR(x[0], 2.0, 1e-10);
    EXPECT_NEAR(x[1], 1.0, 1e-10);
}

TEST(LeastSquares, OverdeterminedRecoversCoefficients)
{
    // y = 3 + 2t sampled noiselessly: exact recovery expected.
    Rng rng(1);
    const std::size_t n = 40;
    Matrix a(n, 2);
    Vector b(n);
    for (std::size_t i = 0; i < n; ++i) {
        double t = rng.nextDouble() * 10.0;
        a(i, 0) = 1.0;
        a(i, 1) = t;
        b[i] = 3.0 + 2.0 * t;
    }
    Vector x = stats::solveLeastSquares(a, b);
    EXPECT_NEAR(x[0], 3.0, 1e-9);
    EXPECT_NEAR(x[1], 2.0, 1e-9);
}

TEST(LeastSquares, MinimizesResidualOnNoisyData)
{
    Rng rng(2);
    const std::size_t n = 100;
    Matrix a(n, 2);
    Vector b(n);
    for (std::size_t i = 0; i < n; ++i) {
        double t = static_cast<double>(i);
        a(i, 0) = 1.0;
        a(i, 1) = t;
        b[i] = 1.0 + 0.5 * t + (rng.nextDouble() - 0.5);
    }
    Vector x = stats::solveLeastSquares(a, b);
    // Perturbing the solution must not reduce the residual.
    auto residual = [&](const Vector &coef) {
        double acc = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            double r = b[i] - coef[0] * a(i, 0) - coef[1] * a(i, 1);
            acc += r * r;
        }
        return acc;
    };
    double best = residual(x);
    for (double d : {-0.01, 0.01}) {
        EXPECT_GE(residual({x[0] + d, x[1]}), best);
        EXPECT_GE(residual({x[0], x[1] + d}), best);
    }
}

TEST(LeastSquares, RankDeficientColumnsGetZero)
{
    // Second column is identically zero: coefficient must be 0, the
    // rest of the fit unaffected.
    Matrix a(10, 3);
    Vector b(10);
    for (std::size_t i = 0; i < 10; ++i) {
        double t = static_cast<double>(i);
        a(i, 0) = 1.0;
        a(i, 1) = 0.0;
        a(i, 2) = t;
        b[i] = 4.0 + 7.0 * t;
    }
    Vector x = stats::solveLeastSquares(a, b);
    EXPECT_NEAR(x[0], 4.0, 1e-9);
    EXPECT_DOUBLE_EQ(x[1], 0.0);
    EXPECT_NEAR(x[2], 7.0, 1e-9);
}

TEST(LeastSquares, DuplicatedColumnHandled)
{
    // Two identical columns: solver must not blow up; the fit must
    // still reproduce the targets.
    Matrix a(8, 2);
    Vector b(8);
    for (std::size_t i = 0; i < 8; ++i) {
        double t = static_cast<double>(i + 1);
        a(i, 0) = t;
        a(i, 1) = t;
        b[i] = 10.0 * t;
    }
    Vector x = stats::solveLeastSquares(a, b);
    for (std::size_t i = 0; i < 8; ++i) {
        double predicted = x[0] * a(i, 0) + x[1] * a(i, 1);
        EXPECT_NEAR(predicted, b[i], 1e-8);
    }
}

TEST(LeastSquares, DimensionMismatchPanics)
{
    Matrix a(3, 2);
    Vector b(2);
    EXPECT_THROW(stats::solveLeastSquares(a, b), std::logic_error);
}
