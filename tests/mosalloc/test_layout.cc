/**
 * @file
 * Tests for page sizes and mosaic layouts.
 */

#include <gtest/gtest.h>

#include "mosalloc/layout.hh"

using namespace mosaic;
using namespace mosaic::alloc;

TEST(PageSize, BytesAndShifts)
{
    EXPECT_EQ(pageBytes(PageSize::Page4K), 4_KiB);
    EXPECT_EQ(pageBytes(PageSize::Page2M), 2_MiB);
    EXPECT_EQ(pageBytes(PageSize::Page1G), 1_GiB);
    EXPECT_EQ(pageShift(PageSize::Page4K), 12u);
    EXPECT_EQ(pageShift(PageSize::Page2M), 21u);
    EXPECT_EQ(pageShift(PageSize::Page1G), 30u);
}

TEST(PageSize, NamesAndRoundTrip)
{
    EXPECT_EQ(pageSizeName(PageSize::Page2M), "2MB");
    EXPECT_EQ(pageSizeFromBytes(4_KiB), PageSize::Page4K);
    EXPECT_EQ(pageSizeFromBytes(1_GiB), PageSize::Page1G);
    EXPECT_THROW(pageSizeFromBytes(8_KiB), std::runtime_error);
}

TEST(MosaicLayout, DefaultIsAll4k)
{
    MosaicLayout layout(10_MiB);
    EXPECT_EQ(layout.poolSize(), 10_MiB);
    EXPECT_TRUE(layout.regions().empty());
    EXPECT_EQ(layout.pageSizeAt(0), PageSize::Page4K);
    EXPECT_EQ(layout.pageSizeAt(10_MiB - 1), PageSize::Page4K);
    EXPECT_DOUBLE_EQ(layout.hugeCoverage(), 0.0);
}

TEST(MosaicLayout, UniformPadsPool)
{
    MosaicLayout layout = MosaicLayout::uniform(3_MiB, PageSize::Page2M);
    EXPECT_EQ(layout.poolSize(), 4_MiB);
    EXPECT_EQ(layout.pageSizeAt(0), PageSize::Page2M);
    EXPECT_EQ(layout.pageSizeAt(4_MiB - 1), PageSize::Page2M);
    EXPECT_DOUBLE_EQ(layout.hugeCoverage(), 1.0);
}

TEST(MosaicLayout, WindowAlignmentGrowsOutward)
{
    // Window [3MiB, 3MiB + 1MiB) must align to [2MiB, 4MiB) for 2MB
    // pages.
    MosaicLayout layout =
        MosaicLayout::withWindow(16_MiB, 3_MiB, 1_MiB, PageSize::Page2M);
    ASSERT_EQ(layout.regions().size(), 1u);
    EXPECT_EQ(layout.regions()[0].start, 2_MiB);
    EXPECT_EQ(layout.regions()[0].length, 2_MiB);
    EXPECT_EQ(layout.pageSizeAt(2_MiB), PageSize::Page2M);
    EXPECT_EQ(layout.pageSizeAt(2_MiB - 1), PageSize::Page4K);
    EXPECT_EQ(layout.pageSizeAt(4_MiB), PageSize::Page4K);
}

TEST(MosaicLayout, EmptyWindowIsAll4k)
{
    MosaicLayout layout =
        MosaicLayout::withWindow(16_MiB, 4_MiB, 0, PageSize::Page2M);
    EXPECT_TRUE(layout.regions().empty());
}

TEST(MosaicLayout, PageBaseAt)
{
    MosaicLayout layout =
        MosaicLayout::withWindow(16_MiB, 2_MiB, 2_MiB, PageSize::Page2M);
    EXPECT_EQ(layout.pageBaseAt(3_MiB), 2_MiB);
    EXPECT_EQ(layout.pageBaseAt(5_MiB + 123), 5_MiB);
    EXPECT_EQ(layout.pageBaseAt(4_KiB + 17), 4_KiB);
}

TEST(MosaicLayout, RejectsMisalignedRegions)
{
    EXPECT_THROW(MosaicLayout(16_MiB,
                              {MosaicRegion{4_KiB, 2_MiB,
                                            PageSize::Page2M}}),
                 std::logic_error);
    EXPECT_THROW(MosaicLayout(16_MiB,
                              {MosaicRegion{0, 1_MiB, PageSize::Page2M}}),
                 std::logic_error);
}

TEST(MosaicLayout, RejectsOverlaps)
{
    EXPECT_THROW(
        MosaicLayout(16_MiB,
                     {MosaicRegion{0, 4_MiB, PageSize::Page2M},
                      MosaicRegion{2_MiB, 2_MiB, PageSize::Page2M}}),
        std::logic_error);
}

TEST(MosaicLayout, SortsRegions)
{
    MosaicLayout layout(16_MiB,
                        {MosaicRegion{8_MiB, 2_MiB, PageSize::Page2M},
                         MosaicRegion{2_MiB, 2_MiB, PageSize::Page2M}});
    ASSERT_EQ(layout.regions().size(), 2u);
    EXPECT_LT(layout.regions()[0].start, layout.regions()[1].start);
}

TEST(MosaicLayout, PageCountsAccountForWholePool)
{
    MosaicLayout layout(8_MiB,
                        {MosaicRegion{2_MiB, 4_MiB, PageSize::Page2M}});
    auto counts = layout.pageCounts();
    EXPECT_EQ(counts[static_cast<std::size_t>(PageSize::Page2M)], 2u);
    EXPECT_EQ(counts[static_cast<std::size_t>(PageSize::Page4K)],
              (8_MiB - 4_MiB) / 4_KiB);
    EXPECT_EQ(counts[static_cast<std::size_t>(PageSize::Page1G)], 0u);
}

TEST(MosaicLayout, EnumeratePagesCoversPoolExactly)
{
    MosaicLayout layout(8_MiB,
                        {MosaicRegion{2_MiB, 2_MiB, PageSize::Page2M}});
    auto pages = layout.enumeratePages();
    Bytes cursor = 0;
    for (const auto &[offset, size] : pages) {
        EXPECT_EQ(offset, cursor);
        cursor += pageBytes(size);
    }
    EXPECT_EQ(cursor, 8_MiB);
}

TEST(MosaicLayout, MixedThreeSizes)
{
    MosaicLayout layout(2_GiB,
                        {MosaicRegion{0, 1_GiB, PageSize::Page1G},
                         MosaicRegion{1_GiB, 512_MiB, PageSize::Page2M}});
    EXPECT_EQ(layout.pageSizeAt(512_MiB), PageSize::Page1G);
    EXPECT_EQ(layout.pageSizeAt(1_GiB + 1), PageSize::Page2M);
    EXPECT_EQ(layout.pageSizeAt(2_GiB - 1), PageSize::Page4K);
    EXPECT_NEAR(layout.hugeCoverage(), 0.75, 1e-12);
}

TEST(MosaicLayout, ConfigStringRoundTrip)
{
    MosaicLayout layout(16_MiB,
                        {MosaicRegion{2_MiB, 4_MiB, PageSize::Page2M}});
    std::string text = layout.toConfigString();
    MosaicLayout parsed = MosaicLayout::fromConfigString(0, text);
    EXPECT_EQ(parsed, layout);
}

TEST(MosaicLayout, ConfigStringAll4k)
{
    MosaicLayout layout(4_MiB);
    MosaicLayout parsed =
        MosaicLayout::fromConfigString(0, layout.toConfigString());
    EXPECT_EQ(parsed, layout);
}

TEST(MosaicLayout, PageSizeAtOutOfRangePanics)
{
    MosaicLayout layout(4_MiB);
    EXPECT_THROW(layout.pageSizeAt(4_MiB), std::logic_error);
}
