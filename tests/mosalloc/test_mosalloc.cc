/**
 * @file
 * Tests for the Mosalloc facade: malloc layer, syscall layer, mallopt
 * knobs, and the page-mapping export.
 */

#include <gtest/gtest.h>

#include <set>

#include "mosalloc/mosalloc.hh"

using namespace mosaic;
using namespace mosaic::alloc;

namespace
{

MosallocConfig
smallConfig()
{
    MosallocConfig config;
    config.heapLayout = MosaicLayout(8_MiB);
    config.anonLayout = MosaicLayout(8_MiB);
    config.filePoolSize = 1_MiB;
    return config;
}

} // namespace

TEST(Mosalloc, MallocReturnsHeapAddresses)
{
    Mosalloc allocator(smallConfig());
    VirtAddr p = allocator.malloc(100);
    ASSERT_NE(p, 0u);
    EXPECT_TRUE(allocator.heapPool().contains(p));
    EXPECT_GE(allocator.allocationSize(p), 100u);
}

TEST(Mosalloc, MallocZeroReturnsNull)
{
    Mosalloc allocator(smallConfig());
    EXPECT_EQ(allocator.malloc(0), 0u);
}

TEST(Mosalloc, DistinctLiveAllocationsDoNotOverlap)
{
    Mosalloc allocator(smallConfig());
    std::vector<std::pair<VirtAddr, Bytes>> live;
    for (int i = 1; i <= 100; ++i) {
        Bytes size = static_cast<Bytes>(i) * 24;
        VirtAddr p = allocator.malloc(size);
        ASSERT_NE(p, 0u);
        for (const auto &[q, qsize] : live) {
            bool disjoint = p + size <= q || q + qsize <= p;
            ASSERT_TRUE(disjoint) << "overlap at allocation " << i;
        }
        live.emplace_back(p, size);
    }
}

TEST(Mosalloc, FreeAndReuse)
{
    Mosalloc allocator(smallConfig());
    VirtAddr a = allocator.malloc(64);
    allocator.free(a);
    VirtAddr b = allocator.malloc(64);
    EXPECT_EQ(a, b); // First fit reuses the freed chunk.
}

TEST(Mosalloc, FreeCoalescesNeighbours)
{
    Mosalloc allocator(smallConfig());
    VirtAddr a = allocator.malloc(64);
    VirtAddr b = allocator.malloc(64);
    VirtAddr c = allocator.malloc(64);
    (void)c;
    allocator.free(a);
    allocator.free(b);
    // The coalesced block serves a 128-byte request at a's address.
    VirtAddr d = allocator.malloc(128);
    EXPECT_EQ(d, a);
}

TEST(Mosalloc, DoubleFreePanics)
{
    Mosalloc allocator(smallConfig());
    VirtAddr a = allocator.malloc(64);
    allocator.free(a);
    EXPECT_THROW(allocator.free(a), std::logic_error);
}

TEST(Mosalloc, CallocOverflowGuard)
{
    Mosalloc allocator(smallConfig());
    EXPECT_EQ(allocator.calloc(~Bytes(0) / 2, 4), 0u);
    VirtAddr p = allocator.calloc(10, 12);
    EXPECT_GE(allocator.allocationSize(p), 120u);
}

TEST(Mosalloc, ReallocSemantics)
{
    Mosalloc allocator(smallConfig());
    VirtAddr p = allocator.malloc(100);
    // Shrinking stays in place.
    EXPECT_EQ(allocator.realloc(p, 50), p);
    // Growing moves (or extends); the result must be live and sized.
    VirtAddr q = allocator.realloc(p, 4000);
    ASSERT_NE(q, 0u);
    EXPECT_GE(allocator.allocationSize(q), 4000u);
    // realloc(ptr, 0) frees.
    EXPECT_EQ(allocator.realloc(q, 0), 0u);
    EXPECT_EQ(allocator.allocationSize(q), 0u);
    // realloc(nullptr, n) is malloc.
    VirtAddr r = allocator.realloc(0, 32);
    EXPECT_NE(r, 0u);
}

TEST(Mosalloc, MorecoreExtendsHeapLikeGlibc)
{
    Mosalloc allocator(smallConfig());
    auto before = allocator.stats().morecoreCalls;
    // A large allocation must trigger heap extension via morecore.
    VirtAddr p = allocator.malloc(1_MiB);
    ASSERT_NE(p, 0u);
    EXPECT_GT(allocator.stats().morecoreCalls, before);
    EXPECT_GE(allocator.heapPool().bytesInUse(), 1_MiB);
}

TEST(Mosalloc, DefaultConfigForcesHeapOnly)
{
    // Mosalloc sets M_MMAP_MAX = 0, so even huge mallocs go through
    // morecore (the libhugetlbfs bug the paper fixes).
    Mosalloc allocator(smallConfig());
    VirtAddr p = allocator.malloc(512_KiB);
    EXPECT_TRUE(allocator.heapPool().contains(p));
    EXPECT_EQ(allocator.stats().directMmapAllocs, 0u);
}

TEST(Mosalloc, GlibcDefaultsSendLargeMallocsToMmap)
{
    // With M_MMAP_MAX > 0 (glibc default), requests above the
    // threshold bypass morecore — the behaviour Mosalloc must disable.
    MosallocConfig config = smallConfig();
    config.mmapMax = 65536;
    Mosalloc allocator(config);
    VirtAddr p = allocator.malloc(512_KiB);
    ASSERT_NE(p, 0u);
    EXPECT_TRUE(allocator.anonPool().contains(p));
    EXPECT_EQ(allocator.stats().directMmapAllocs, 1u);
    // Small requests still come from the heap.
    VirtAddr q = allocator.malloc(64);
    EXPECT_TRUE(allocator.heapPool().contains(q));
    // And free() routes the direct mapping back to munmap.
    allocator.free(p);
    EXPECT_EQ(allocator.anonPool().numMappings(), 0u);
}

TEST(Mosalloc, MalloptKnobs)
{
    Mosalloc allocator(smallConfig());
    EXPECT_EQ(allocator.mallopt(MalloptParam::MmapMax, 65536), 1);
    EXPECT_EQ(allocator.mallopt(MalloptParam::MmapThreshold, 4096), 1);
    VirtAddr p = allocator.malloc(8_KiB);
    EXPECT_TRUE(allocator.anonPool().contains(p));

    EXPECT_EQ(allocator.mallopt(MalloptParam::MmapMax, 0), 1);
    VirtAddr q = allocator.malloc(8_KiB);
    EXPECT_TRUE(allocator.heapPool().contains(q));

    EXPECT_EQ(allocator.mallopt(MalloptParam::MmapMax, -1), 0);
    EXPECT_EQ(allocator.mallopt(MalloptParam::ArenaMax, 0), 0);
    EXPECT_EQ(allocator.mallopt(MalloptParam::ArenaMax, 4), 1);
}

TEST(Mosalloc, SbrkAndBrkRouteToHeapPool)
{
    Mosalloc allocator(smallConfig());
    VirtAddr brk0 = allocator.sbrk(0);
    EXPECT_EQ(brk0, PoolAddresses::heapBase);
    allocator.sbrk(64_KiB);
    EXPECT_EQ(allocator.heapPool().programBreak(), brk0 + 64_KiB);
    EXPECT_EQ(allocator.brk(brk0 + 32_KiB), 0);
}

TEST(Mosalloc, MmapAndMunmapByPool)
{
    Mosalloc allocator(smallConfig());
    VirtAddr anon = allocator.mmap(64_KiB);
    VirtAddr file = allocator.mmap(64_KiB, true);
    EXPECT_TRUE(allocator.anonPool().contains(anon));
    EXPECT_TRUE(allocator.filePool().contains(file));
    EXPECT_EQ(allocator.munmap(anon, 64_KiB), 0);
    EXPECT_EQ(allocator.munmap(file, 64_KiB), 0);
    EXPECT_EQ(allocator.munmap(0x1234, 4_KiB), -1);
}

TEST(Mosalloc, PageSizeOfRespectsLayouts)
{
    MosallocConfig config = smallConfig();
    config.heapLayout = MosaicLayout(
        8_MiB, {MosaicRegion{2_MiB, 2_MiB, PageSize::Page2M}});
    Mosalloc allocator(config);
    VirtAddr heap = PoolAddresses::heapBase;
    EXPECT_EQ(allocator.pageSizeOf(heap), PageSize::Page4K);
    EXPECT_EQ(allocator.pageSizeOf(heap + 3_MiB), PageSize::Page2M);
    EXPECT_EQ(allocator.pageBaseOf(heap + 3_MiB), heap + 2_MiB);
    EXPECT_THROW(allocator.pageSizeOf(0x10), std::runtime_error);
}

TEST(Mosalloc, PageMappingsCoverAllPoolsWithoutOverlap)
{
    MosallocConfig config = smallConfig();
    config.heapLayout = MosaicLayout(
        4_MiB, {MosaicRegion{0, 2_MiB, PageSize::Page2M}});
    Mosalloc allocator(config);
    auto mappings = allocator.pageMappings();

    Bytes total = 0;
    std::set<VirtAddr> starts;
    for (const auto &mapping : mappings) {
        EXPECT_TRUE(starts.insert(mapping.virtBase).second);
        EXPECT_EQ(mapping.virtBase %
                      pageBytes(mapping.pageSize),
                  0u);
        total += pageBytes(mapping.pageSize);
    }
    Bytes expected = allocator.heapPool().size() +
                     allocator.anonPool().size() +
                     allocator.filePool().size();
    EXPECT_EQ(total, expected);
}

TEST(Mosalloc, StatsTrackCalls)
{
    Mosalloc allocator(smallConfig());
    allocator.malloc(100);
    allocator.mmap(4_KiB);
    auto stats = allocator.stats();
    EXPECT_EQ(stats.mallocCalls, 1u);
    EXPECT_EQ(stats.mmapCalls, 1u);
    EXPECT_GT(stats.heapInUse, 0u);
    EXPECT_EQ(stats.anonInUse, 4_KiB);
}

TEST(Mosalloc, LibhugetlbfsStyleSkipsAnonLayout)
{
    // Morecore-only interception: the anonymous pool stays 4KB no
    // matter what hugepage size was requested (Section V-A).
    auto config = libhugetlbfsStyleConfig(8_MiB, PageSize::Page2M,
                                          8_MiB);
    Mosalloc allocator(config);
    EXPECT_DOUBLE_EQ(allocator.anonPool().layout().hugeCoverage(), 0.0);
    EXPECT_GT(allocator.heapPool().layout().hugeCoverage(), 0.99);
    VirtAddr mapped = allocator.mmap(64_KiB);
    EXPECT_EQ(allocator.pageSizeOf(mapped), PageSize::Page4K);
}

TEST(Mosalloc, LibhugetlbfsStyleArenaEscapes)
{
    // With multiple arenas allowed, a slice of sizeable mallocs lands
    // in mmap-backed arenas outside the hugepage heap — the paper's
    // Section V-C bug. Mosalloc's arenaMax=1 default prevents it.
    auto lib_config = libhugetlbfsStyleConfig(64_MiB, PageSize::Page2M,
                                              64_MiB);
    Mosalloc lib(lib_config);
    for (int i = 0; i < 1000; ++i)
        lib.malloc(8_KiB);
    EXPECT_GT(lib.stats().directMmapAllocs, 0u);

    MosallocConfig mos_config;
    mos_config.heapLayout = MosaicLayout::uniform(64_MiB,
                                                  PageSize::Page2M);
    mos_config.anonLayout = MosaicLayout(64_MiB);
    Mosalloc mosalloc(mos_config);
    for (int i = 0; i < 1000; ++i)
        mosalloc.malloc(8_KiB);
    EXPECT_EQ(mosalloc.stats().directMmapAllocs, 0u);
}
