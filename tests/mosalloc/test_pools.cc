/**
 * @file
 * Tests for the heap (brk), anonymous-mmap, and file pools.
 */

#include <gtest/gtest.h>

#include "mosalloc/pool.hh"

using namespace mosaic;
using namespace mosaic::alloc;

namespace
{

constexpr VirtAddr base = 4_GiB; // 1 GiB aligned

MosaicLayout
plain(Bytes size)
{
    return MosaicLayout(size);
}

} // namespace

TEST(Pool, RequiresGigAlignedBase)
{
    EXPECT_THROW(HeapPool(4_GiB + 4_KiB, plain(1_MiB)), std::logic_error);
}

TEST(Pool, ContainsAndOffset)
{
    HeapPool pool(base, plain(1_MiB));
    EXPECT_TRUE(pool.contains(base));
    EXPECT_TRUE(pool.contains(base + 1_MiB - 1));
    EXPECT_FALSE(pool.contains(base + 1_MiB));
    EXPECT_FALSE(pool.contains(base - 1));
    EXPECT_EQ(pool.offsetOf(base + 100), 100u);
}

TEST(HeapPool, SbrkZeroReturnsBreak)
{
    HeapPool pool(base, plain(1_MiB));
    EXPECT_EQ(pool.sbrk(0), base);
    EXPECT_EQ(pool.programBreak(), base);
}

TEST(HeapPool, SbrkGrowsAndShrinks)
{
    HeapPool pool(base, plain(1_MiB));
    VirtAddr old_break = pool.sbrk(64_KiB);
    EXPECT_EQ(old_break, base);
    EXPECT_EQ(pool.programBreak(), base + 64_KiB);
    EXPECT_EQ(pool.bytesInUse(), 64_KiB);

    old_break = pool.sbrk(-16_KiB);
    EXPECT_EQ(old_break, base + 64_KiB);
    EXPECT_EQ(pool.programBreak(), base + 48_KiB);
    EXPECT_EQ(pool.bytesInUse(), 48_KiB);
    EXPECT_EQ(pool.highWater(), 64_KiB);
}

TEST(HeapPool, SbrkFailsOnExhaustion)
{
    HeapPool pool(base, plain(64_KiB));
    EXPECT_EQ(pool.sbrk(static_cast<std::int64_t>(128_KiB)), 0u);
    // Failure leaves the break untouched.
    EXPECT_EQ(pool.programBreak(), base);
    EXPECT_NE(pool.sbrk(static_cast<std::int64_t>(64_KiB)), 0u);
    EXPECT_EQ(pool.sbrk(1), 0u);
}

TEST(HeapPool, SbrkFailsBelowBase)
{
    HeapPool pool(base, plain(64_KiB));
    EXPECT_EQ(pool.sbrk(-1), 0u);
}

TEST(HeapPool, BrkSetsAbsoluteBreak)
{
    HeapPool pool(base, plain(1_MiB));
    EXPECT_EQ(pool.brk(base + 100_KiB), 0);
    EXPECT_EQ(pool.programBreak(), base + 100_KiB);
    EXPECT_EQ(pool.brk(base + 2_MiB), -1);
    EXPECT_EQ(pool.brk(base - 1), -1);
    EXPECT_EQ(pool.programBreak(), base + 100_KiB);
}

TEST(AnonPool, FirstFitReusesLowestFreedBlock)
{
    AnonPool pool(base, plain(1_MiB));
    VirtAddr a = pool.mmap(16_KiB);
    VirtAddr b = pool.mmap(16_KiB);
    VirtAddr c = pool.mmap(16_KiB);
    ASSERT_NE(a, 0u);
    ASSERT_NE(b, 0u);
    ASSERT_NE(c, 0u);
    EXPECT_EQ(b, a + 16_KiB);

    // Free the first and second; a fresh allocation of the same size
    // must land on the lowest freed block (first fit).
    EXPECT_EQ(pool.munmap(b, 16_KiB), 0);
    EXPECT_EQ(pool.munmap(a, 16_KiB), 0);
    VirtAddr d = pool.mmap(8_KiB);
    EXPECT_EQ(d, a);
}

TEST(AnonPool, SplitsLargerFreeBlock)
{
    AnonPool pool(base, plain(1_MiB));
    VirtAddr a = pool.mmap(64_KiB);
    VirtAddr guard = pool.mmap(4_KiB);
    ASSERT_NE(guard, 0u);
    pool.munmap(a, 64_KiB);
    VirtAddr b = pool.mmap(16_KiB);
    VirtAddr c = pool.mmap(16_KiB);
    EXPECT_EQ(b, a);
    EXPECT_EQ(c, a + 16_KiB); // carved from the same split block
}

TEST(AnonPool, TopOnlyReclaim)
{
    AnonPool pool(base, plain(1_MiB));
    VirtAddr a = pool.mmap(16_KiB);
    VirtAddr b = pool.mmap(16_KiB);
    EXPECT_EQ(pool.topCursor(), 32_KiB);

    // Freeing an interior block does not retreat the cursor...
    pool.munmap(a, 16_KiB);
    EXPECT_EQ(pool.topCursor(), 32_KiB);

    // ...but freeing the top block retreats over both free blocks.
    pool.munmap(b, 16_KiB);
    EXPECT_EQ(pool.topCursor(), 0u);
    EXPECT_EQ(pool.numMappings(), 0u);
}

TEST(AnonPool, LengthsRoundToPages)
{
    AnonPool pool(base, plain(1_MiB));
    VirtAddr a = pool.mmap(1);
    VirtAddr b = pool.mmap(1);
    EXPECT_EQ(b - a, 4_KiB);
    EXPECT_EQ(pool.bytesInUse(), 8_KiB);
}

TEST(AnonPool, MunmapValidation)
{
    AnonPool pool(base, plain(1_MiB));
    VirtAddr a = pool.mmap(16_KiB);
    EXPECT_EQ(pool.munmap(a + 4_KiB, 4_KiB), -1); // not a mapping start
    EXPECT_EQ(pool.munmap(a, 8_KiB), -1);         // partial unmap
    EXPECT_EQ(pool.munmap(base + 512_KiB, 4_KiB), -1);
    EXPECT_EQ(pool.munmap(a, 16_KiB), 0);
    EXPECT_EQ(pool.munmap(a, 16_KiB), -1); // double unmap
}

TEST(AnonPool, ExhaustionReturnsZero)
{
    AnonPool pool(base, plain(64_KiB));
    EXPECT_NE(pool.mmap(64_KiB), 0u);
    EXPECT_EQ(pool.mmap(4_KiB), 0u);
}

TEST(AnonPool, FragmentationOverheadIsSmallForChurn)
{
    // The paper measured < 1% extra consumption; emulate a simple
    // churn pattern and verify the statistic stays small.
    AnonPool pool(base, plain(8_MiB));
    std::vector<VirtAddr> live;
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 8; ++i)
            live.push_back(pool.mmap(16_KiB));
        // Free the older half (FIFO: frees interior blocks first).
        for (int i = 0; i < 4; ++i) {
            pool.munmap(live.front(), 16_KiB);
            live.erase(live.begin());
        }
    }
    EXPECT_LT(pool.fragmentationOverhead(), 0.20);
    EXPECT_EQ(pool.numMappings(), live.size());
}

TEST(FilePool, BumpAllocationAndUnmap)
{
    FilePool pool(base, 1_MiB);
    VirtAddr a = pool.mmap(10_KiB);
    VirtAddr b = pool.mmap(4_KiB);
    EXPECT_EQ(a, base);
    EXPECT_EQ(b, base + 12_KiB); // 10KiB rounded to 12KiB
    EXPECT_EQ(pool.munmap(a, 10_KiB), 0);
    EXPECT_EQ(pool.munmap(a, 10_KiB), -1);
}

TEST(FilePool, Always4kPages)
{
    FilePool pool(base, 1_MiB);
    EXPECT_EQ(pool.pageSizeAt(base + 100_KiB), PageSize::Page4K);
}
