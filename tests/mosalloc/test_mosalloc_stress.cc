/**
 * @file
 * Randomized stress test of the Mosalloc chunk allocator: thousands of
 * interleaved malloc/free/realloc/mmap operations with continuously
 * checked accounting invariants.
 */

#include <gtest/gtest.h>

#include <map>

#include "mosalloc/mosalloc.hh"
#include "support/random.hh"

using namespace mosaic;
using namespace mosaic::alloc;

namespace
{

MosallocConfig
stressConfig()
{
    MosallocConfig config;
    config.heapLayout = MosaicLayout(64_MiB);
    config.anonLayout = MosaicLayout(64_MiB);
    config.filePoolSize = 8_MiB;
    return config;
}

} // namespace

TEST(MosallocStress, RandomOperationsKeepInvariants)
{
    Mosalloc allocator(stressConfig());
    Rng rng(0x57e55);
    std::map<VirtAddr, Bytes> live;       // malloc'd chunks
    std::map<VirtAddr, Bytes> mapped;     // anon mmaps

    for (int op = 0; op < 20000; ++op) {
        unsigned kind = static_cast<unsigned>(rng.nextBounded(100));
        if (kind < 45) {
            // malloc of 16B..64KB
            Bytes size = 16 + rng.nextBounded(64_KiB);
            VirtAddr p = allocator.malloc(size);
            if (p != 0) {
                ASSERT_TRUE(allocator.heapPool().contains(p));
                ASSERT_EQ(live.count(p), 0u);
                live[p] = size;
            }
        } else if (kind < 75 && !live.empty()) {
            // free a random live chunk
            auto it = live.begin();
            std::advance(it, rng.nextBounded(live.size()));
            allocator.free(it->first);
            live.erase(it);
        } else if (kind < 85 && !live.empty()) {
            // realloc a random chunk
            auto it = live.begin();
            std::advance(it, rng.nextBounded(live.size()));
            Bytes size = 16 + rng.nextBounded(32_KiB);
            VirtAddr q = allocator.realloc(it->first, size);
            if (q != 0) {
                if (q != it->first)
                    live.erase(it);
                live[q] = size;
            }
        } else if (kind < 93) {
            // anon mmap
            Bytes size = 4_KiB * (1 + rng.nextBounded(16));
            VirtAddr p = allocator.mmap(size);
            if (p != 0)
                mapped[p] = size;
        } else if (!mapped.empty()) {
            // munmap
            auto it = mapped.begin();
            std::advance(it, rng.nextBounded(mapped.size()));
            ASSERT_EQ(allocator.munmap(it->first, it->second), 0);
            mapped.erase(it);
        }

        // Invariants, checked throughout (cheap ones every op).
        ASSERT_LE(allocator.heapPool().bytesInUse(),
                  allocator.heapPool().size());
        ASSERT_LE(allocator.anonPool().bytesInUse(),
                  allocator.anonPool().highWater());
        if (op % 500 == 0) {
            // Every tracked pointer still resolves to a live chunk of
            // at least the requested size.
            for (const auto &[p, size] : live) {
                ASSERT_GE(allocator.allocationSize(p), size)
                    << "op " << op;
            }
            ASSERT_EQ(allocator.anonPool().numMappings(),
                      mapped.size() +
                          0 /* direct malloc escapes: none here */);
        }
    }

    // Tear down everything; the pools must drain to empty.
    for (const auto &[p, size] : live)
        allocator.free(p);
    for (const auto &[p, size] : mapped)
        ASSERT_EQ(allocator.munmap(p, size), 0);
    EXPECT_EQ(allocator.anonPool().bytesInUse(), 0u);
    EXPECT_EQ(allocator.anonPool().numMappings(), 0u);
}

TEST(MosallocStress, PageMappingsStableAcrossChurn)
{
    // The page-table export depends only on pool geometry, never on
    // allocation history.
    Mosalloc a(stressConfig());
    Mosalloc b(stressConfig());
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
        VirtAddr p = b.malloc(16 + rng.nextBounded(8_KiB));
        if (p != 0 && (rng.next() & 1))
            b.free(p);
    }
    auto ma = a.pageMappings();
    auto mb = b.pageMappings();
    ASSERT_EQ(ma.size(), mb.size());
    for (std::size_t i = 0; i < ma.size(); ++i) {
        EXPECT_EQ(ma[i].virtBase, mb[i].virtBase);
        EXPECT_EQ(ma[i].pageSize, mb[i].pageSize);
    }
}
