/**
 * @file
 * Tests for the THP steady-state layout derivation.
 */

#include <gtest/gtest.h>

#include "mosalloc/thp.hh"

using namespace mosaic;
using namespace mosaic::alloc;

namespace
{

MosallocConfig
setupConfig()
{
    MosallocConfig config;
    config.heapLayout = MosaicLayout(32_MiB);
    config.anonLayout = MosaicLayout(32_MiB);
    config.filePoolSize = 1_MiB;
    return config;
}

} // namespace

TEST(Thp, PromotesFullyPopulatedHeapFrames)
{
    Mosalloc allocator(setupConfig());
    allocator.malloc(5_MiB); // high water ~5 MiB
    MosaicLayout layout = thpHeapLayout(allocator);
    // Two full 2MB frames fit below the high-water mark.
    ASSERT_EQ(layout.regions().size(), 1u);
    EXPECT_EQ(layout.regions()[0].start, 0u);
    EXPECT_GE(layout.regions()[0].length, 4_MiB);
    EXPECT_EQ(layout.regions()[0].pageSize, PageSize::Page2M);
    // The partially populated tail frame stays 4KB.
    EXPECT_EQ(layout.pageSizeAt(layout.regions()[0].end()),
              PageSize::Page4K);
}

TEST(Thp, UntouchedPoolsStay4k)
{
    Mosalloc allocator(setupConfig());
    EXPECT_TRUE(thpHeapLayout(allocator).regions().empty());
    EXPECT_TRUE(thpAnonLayout(allocator).regions().empty());
}

TEST(Thp, SmallFootprintBelowOneFrameStays4k)
{
    Mosalloc allocator(setupConfig());
    allocator.malloc(512_KiB);
    EXPECT_TRUE(thpHeapLayout(allocator).regions().empty());
}

TEST(Thp, AnonPoolPromotedIndependently)
{
    Mosalloc allocator(setupConfig());
    allocator.mmap(7_MiB);
    MosaicLayout layout = thpAnonLayout(allocator);
    ASSERT_EQ(layout.regions().size(), 1u);
    EXPECT_EQ(layout.regions()[0].length, 6_MiB);
}

TEST(Thp, ConfigCoversBothPools)
{
    Mosalloc allocator(setupConfig());
    allocator.malloc(3_MiB);
    allocator.mmap(3_MiB);
    MosallocConfig config = thpStyleConfig(allocator);
    EXPECT_GT(config.heapLayout.hugeCoverage(), 0.0);
    EXPECT_GT(config.anonLayout.hugeCoverage(), 0.0);
    // THP never uses 1GB pages.
    for (const auto &region : config.heapLayout.regions())
        EXPECT_EQ(region.pageSize, PageSize::Page2M);
}

TEST(Thp, NoControlOverPlacement)
{
    // THP promotion always starts at the pool base — the user cannot
    // target a hot region the way Mosalloc windows can (limitation (1)
    // of Section V-A).
    Mosalloc allocator(setupConfig());
    allocator.malloc(9_MiB);
    MosaicLayout layout = thpHeapLayout(allocator);
    ASSERT_FALSE(layout.regions().empty());
    EXPECT_EQ(layout.regions()[0].start, 0u);
}
