/**
 * @file
 * Tests for the structured error type and Result<T>.
 */

#include <gtest/gtest.h>

#include "support/error.hh"

using namespace mosaic;

TEST(Error, CarriesCategoryAndMessage)
{
    Error error = ioError("cannot open x");
    EXPECT_EQ(error.category(), ErrorCategory::Io);
    EXPECT_EQ(error.message(), "cannot open x");
    EXPECT_TRUE(error.transient());
    EXPECT_EQ(error.str(), "io error: cannot open x");
}

TEST(Error, OnlyIoIsTransient)
{
    EXPECT_TRUE(ioError("x").transient());
    EXPECT_FALSE(corruptError("x").transient());
    EXPECT_FALSE(parseError("x").transient());
    EXPECT_FALSE(configError("x").transient());
    EXPECT_FALSE(numericError("x").transient());
    EXPECT_FALSE(netError("x").transient());
    EXPECT_FALSE(shutdownError("x").transient());
}

TEST(Error, ContextChainRendersInOrder)
{
    Error error = corruptError("CRC mismatch");
    error.addContext("while loading trace a.mtrc");
    error.addContext("while running cell SandyBridge/gups");
    EXPECT_EQ(error.str(),
              "corrupt error: CRC mismatch (while loading trace a.mtrc; "
              "while running cell SandyBridge/gups)");
    EXPECT_EQ(error.context().size(), 2u);
}

TEST(Error, WithContextCopies)
{
    Error base = parseError("bad row");
    Error derived = base.withContext("line 7");
    EXPECT_TRUE(base.context().empty());
    ASSERT_EQ(derived.context().size(), 1u);
    EXPECT_EQ(derived.context()[0], "line 7");
}

TEST(Error, CategoryNames)
{
    EXPECT_STREQ(errorCategoryName(ErrorCategory::Io), "io");
    EXPECT_STREQ(errorCategoryName(ErrorCategory::Corrupt), "corrupt");
    EXPECT_STREQ(errorCategoryName(ErrorCategory::Parse), "parse");
    EXPECT_STREQ(errorCategoryName(ErrorCategory::Config), "config");
    EXPECT_STREQ(errorCategoryName(ErrorCategory::Numeric), "numeric");
    EXPECT_STREQ(errorCategoryName(ErrorCategory::Timeout), "timeout");
    EXPECT_STREQ(errorCategoryName(ErrorCategory::Net), "net");
    EXPECT_STREQ(errorCategoryName(ErrorCategory::Shutdown),
                 "shutdown");
    EXPECT_STREQ(errorCategoryName(ErrorCategory::Internal), "internal");
}

TEST(Result, HoldsValue)
{
    Result<int> result(42);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value(), 42);
    EXPECT_EQ(result.valueOr(7), 42);
}

TEST(Result, HoldsError)
{
    Result<int> result(numericError("NaN"));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().category(), ErrorCategory::Numeric);
    EXPECT_EQ(result.valueOr(7), 7);
    EXPECT_THROW(result.value(), std::logic_error);
}

TEST(Result, OkOrThrowUnwrapsOrThrows)
{
    EXPECT_EQ(Result<int>(3).okOrThrow(), 3);
    EXPECT_THROW(Result<int>(ioError("gone")).okOrThrow(),
                 std::runtime_error);
}

TEST(Result, VoidSpecialization)
{
    Result<void> good;
    EXPECT_TRUE(good.ok());
    EXPECT_NO_THROW(good.okOrThrow());

    Result<void> bad(ioError("disk full"));
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().category(), ErrorCategory::Io);
    EXPECT_THROW(bad.okOrThrow(), std::runtime_error);
}

TEST(Result, MovesNonCopyableValues)
{
    auto ptr = std::make_unique<int>(5);
    Result<std::unique_ptr<int>> result(std::move(ptr));
    ASSERT_TRUE(result.ok());
    auto out = std::move(result).okOrThrow();
    EXPECT_EQ(*out, 5);
}
