/**
 * @file
 * Tests for the metrics registry: thread-safe counters, RAII timers,
 * hierarchical phase nesting, and the JSON run manifest.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <iterator>
#include <thread>
#include <vector>

#include "common/scratch_dir.hh"
#include "support/metrics.hh"

using namespace mosaic;

namespace
{

/**
 * Minimal recursive-descent JSON syntax checker — enough to assert the
 * manifest is well-formed without a JSON library in the tree.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : text_(text) {}

    bool
    valid()
    {
        pos_ = 0;
        return value() && (skipSpace(), pos_ == text_.size());
    }

  private:
    bool
    value()
    {
        skipSpace();
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipSpace();
        if (peek() == '}')
            return ++pos_, true;
        while (true) {
            skipSpace();
            if (!string())
                return false;
            skipSpace();
            if (peek() != ':')
                return false;
            ++pos_;
            if (!value())
                return false;
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}')
                return ++pos_, true;
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipSpace();
        if (peek() == ']')
            return ++pos_, true;
        while (true) {
            if (!value())
                return false;
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']')
                return ++pos_, true;
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return false;
            }
            ++pos_;
        }
        if (pos_ >= text_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        std::size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

TEST(Metrics, CountersAccumulateAndDefaultToZero)
{
    MetricsRegistry registry;
    EXPECT_EQ(registry.counter("never"), 0u);
    registry.add("cells");
    registry.add("cells", 4);
    EXPECT_EQ(registry.counter("cells"), 5u);
}

TEST(Metrics, GaugesKeepLastValue)
{
    MetricsRegistry registry;
    EXPECT_DOUBLE_EQ(registry.gauge("x", -1.0), -1.0);
    registry.set("x", 2.5);
    registry.set("x", 7.25);
    EXPECT_DOUBLE_EQ(registry.gauge("x"), 7.25);
}

TEST(Metrics, ConcurrentCounterIncrementsAreLossless)
{
    // The campaign thread pool bumps the same counters from every
    // worker; no increment may be lost.
    MetricsRegistry registry;
    constexpr int threads = 8;
    constexpr int perThread = 10000;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&registry] {
            for (int i = 0; i < perThread; ++i) {
                registry.add("shared");
                registry.addPhaseSample("phase", 0.001);
            }
        });
    }
    for (auto &thread : pool)
        thread.join();
    EXPECT_EQ(registry.counter("shared"),
              static_cast<std::uint64_t>(threads) * perThread);
    PhaseStats stats = registry.phase("phase");
    EXPECT_EQ(stats.count, static_cast<std::uint64_t>(threads) * perThread);
    EXPECT_NEAR(stats.seconds, threads * perThread * 0.001, 1e-6);
}

TEST(Metrics, ScopedTimerRecordsOnceEvenWhenStoppedEarly)
{
    MetricsRegistry registry;
    {
        ScopedTimer timer(registry, "work");
        double first = timer.stop();
        EXPECT_GE(first, 0.0);
        EXPECT_DOUBLE_EQ(timer.stop(), first); // idempotent
    } // destructor must not double-record
    EXPECT_EQ(registry.phase("work").count, 1u);
}

TEST(Metrics, ScopedPhaseNestsIntoSlashPaths)
{
    MetricsRegistry registry;
    EXPECT_EQ(ScopedPhase::currentPath(), "");
    {
        ScopedPhase outer(registry, "campaign");
        EXPECT_EQ(outer.path(), "campaign");
        EXPECT_EQ(ScopedPhase::currentPath(), "campaign");
        {
            ScopedPhase inner(registry, "fit");
            EXPECT_EQ(inner.path(), "campaign/fit");
            EXPECT_EQ(ScopedPhase::currentPath(), "campaign/fit");
        }
        EXPECT_EQ(ScopedPhase::currentPath(), "campaign");
    }
    EXPECT_EQ(ScopedPhase::currentPath(), "");
    EXPECT_EQ(registry.phase("campaign").count, 1u);
    EXPECT_EQ(registry.phase("campaign/fit").count, 1u);
    // The outer interval covers the inner one.
    EXPECT_GE(registry.phase("campaign").seconds,
              registry.phase("campaign/fit").seconds);
}

TEST(Metrics, SnapshotsAreSortedByName)
{
    MetricsRegistry registry;
    registry.add("z");
    registry.add("a");
    registry.add("m");
    auto counters = registry.counters();
    ASSERT_EQ(counters.size(), 3u);
    EXPECT_EQ(counters[0].first, "a");
    EXPECT_EQ(counters[1].first, "m");
    EXPECT_EQ(counters[2].first, "z");
}

TEST(Metrics, ResetDropsEverything)
{
    MetricsRegistry registry;
    registry.add("c");
    registry.set("g", 1.0);
    registry.addPhaseSample("p", 0.5);
    registry.reset();
    EXPECT_TRUE(registry.counters().empty());
    EXPECT_TRUE(registry.gauges().empty());
    EXPECT_TRUE(registry.phases().empty());
}

TEST(Metrics, AddPhaseStatsFoldsPreAccumulatedIntervals)
{
    MetricsRegistry registry;
    registry.addPhaseSample("campaign/cell", 0.25);
    registry.addPhaseStats("campaign/cell", PhaseStats{0.75, 3});
    PhaseStats stats = registry.phase("campaign/cell");
    EXPECT_NEAR(stats.seconds, 1.0, 1e-9);
    EXPECT_EQ(stats.count, 4u);

    // Workers that timed nothing merge as zeros.
    registry.addPhaseStats("campaign/idle", PhaseStats{});
    EXPECT_EQ(registry.phase("campaign/idle").count, 0u);
}

TEST(Metrics, MergeFromFoldsShardsDeterministically)
{
    MetricsRegistry total;
    total.add("cells", 1);
    total.set("jobs", 1.0);
    total.addPhaseSample("cell", 0.5);

    MetricsRegistry shard_a;
    shard_a.add("cells", 2);
    shard_a.add("retries", 1);
    shard_a.set("jobs", 4.0);
    shard_a.addPhaseSample("cell", 0.25);

    MetricsRegistry shard_b;
    shard_b.add("cells", 3);
    shard_b.addPhaseSample("cell", 0.25);
    shard_b.addPhaseSample("trace", 1.0);

    total.mergeFrom(shard_a);
    total.mergeFrom(shard_b);

    // Counters and phases merge additively; gauges take the last
    // merged shard that set them.
    EXPECT_EQ(total.counter("cells"), 6u);
    EXPECT_EQ(total.counter("retries"), 1u);
    EXPECT_EQ(total.gauge("jobs"), 4.0);
    EXPECT_NEAR(total.phase("cell").seconds, 1.0, 1e-9);
    EXPECT_EQ(total.phase("cell").count, 3u);
    EXPECT_EQ(total.phase("trace").count, 1u);

    // Merging an empty shard is a no-op.
    total.mergeFrom(MetricsRegistry());
    EXPECT_EQ(total.counter("cells"), 6u);
}

TEST(Metrics, ConcurrentShardMergesAreLossless)
{
    // Workers merging their shards into one registry concurrently (the
    // campaign does it under join, but the registry itself must hold).
    constexpr int shards = 8;
    MetricsRegistry total;
    std::vector<std::thread> pool;
    for (int s = 0; s < shards; ++s) {
        pool.emplace_back([&] {
            MetricsRegistry shard;
            shard.add("cells", 10);
            shard.addPhaseSample("cell", 0.001);
            total.mergeFrom(shard);
        });
    }
    for (auto &thread : pool)
        thread.join();
    EXPECT_EQ(total.counter("cells"), 10u * shards);
    EXPECT_EQ(total.phase("cell").count, static_cast<std::uint64_t>(shards));
}

TEST(Metrics, JsonEscapeHandlesSpecials)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(Metrics, ManifestJsonIsWellFormedAndCarriesRegistry)
{
    MetricsRegistry registry;
    registry.add("campaign/cells_completed", 55);
    registry.set("fit/last_lambda_ratio", 0.01);
    registry.addPhaseSample("campaign/trace", 1.5);

    RunManifest manifest("test_tool");
    manifest.setConfig("out", std::string("a\"quoted\".csv"));
    manifest.setConfig("threads", std::uint64_t(4));
    manifest.setConfig("resume", true);
    manifest.setConfig("workloads",
                       std::vector<std::string>{"gups/8GB", "spec06/mcf"});
    manifest.addFailure("SandyBridge/bogus/*", "Config: no such workload");

    std::string json = manifest.toJson(registry);
    EXPECT_TRUE(JsonChecker(json).valid()) << json;

    // Shape: schema tag, tool identity, and every registry section.
    EXPECT_NE(json.find("\"schema\": \"mosaic-run-manifest/1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"tool\": \"test_tool\""), std::string::npos);
    EXPECT_NE(json.find("\"campaign/cells_completed\": 55"),
              std::string::npos);
    EXPECT_NE(json.find("fit/last_lambda_ratio"), std::string::npos);
    EXPECT_NE(json.find("campaign/trace"), std::string::npos);
    EXPECT_NE(json.find("a\\\"quoted\\\".csv"), std::string::npos);
    EXPECT_NE(json.find("no such workload"), std::string::npos);
    EXPECT_EQ(manifest.numFailures(), 1u);
}

TEST(Metrics, ManifestWriteRoundTripsThroughDisk)
{
    test::ScratchDir scratch;
    MetricsRegistry registry;
    registry.add("replay/records", 12345);

    RunManifest manifest("round_trip");
    std::string path = scratch.file("manifest.json");
    ASSERT_TRUE(manifest.write(path, registry).ok());

    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_EQ(text, manifest.toJson(registry));
    EXPECT_TRUE(JsonChecker(text).valid());
}

TEST(Metrics, GlobalRegistryIsASingleton)
{
    MetricsRegistry &a = metrics();
    MetricsRegistry &b = metrics();
    EXPECT_EQ(&a, &b);
}

TEST(Metrics, RepeatedMergeFromDoubleCountsButDrainDoesNot)
{
    // The serve pattern: a long-lived worker shard folded into a
    // central registry once per /stats query. mergeFrom leaves the
    // shard intact, so repeating it double-counts — which is why the
    // serve path must drain instead.
    MetricsRegistry shard;
    shard.add("serve/requests", 10);

    MetricsRegistry merged;
    merged.mergeFrom(shard);
    merged.mergeFrom(shard);
    EXPECT_EQ(merged.counter("serve/requests"), 20u); // the hazard

    MetricsRegistry drained;
    MetricsRegistry source;
    source.add("serve/requests", 10);
    source.drainInto(drained);
    source.drainInto(drained);
    EXPECT_EQ(drained.counter("serve/requests"), 10u);
    EXPECT_EQ(source.counter("serve/requests"), 0u);
}

TEST(Metrics, DrainMovesCountersGaugesAndPhases)
{
    MetricsRegistry source;
    source.add("serve/warm_hits", 7);
    source.set("serve/inflight", 3.0);
    source.addPhaseSample("serve/query", 0.5);
    source.addPhaseSample("serve/query", 0.25);

    MetricsRegistry target;
    target.add("serve/warm_hits", 1);
    source.drainInto(target);

    EXPECT_EQ(target.counter("serve/warm_hits"), 8u);
    EXPECT_DOUBLE_EQ(target.gauge("serve/inflight"), 3.0);
    PhaseStats stats = target.phase("serve/query");
    EXPECT_DOUBLE_EQ(stats.seconds, 0.75);
    EXPECT_EQ(stats.count, 2u);

    // The source is empty afterwards; a second drain adds nothing and
    // an untouched gauge keeps its target value.
    source.drainInto(target);
    EXPECT_EQ(target.counter("serve/warm_hits"), 8u);
    EXPECT_DOUBLE_EQ(target.gauge("serve/inflight"), 3.0);
    EXPECT_EQ(target.phase("serve/query").count, 2u);
}

TEST(Metrics, DrainIntoSelfIsANoOp)
{
    MetricsRegistry registry;
    registry.add("serve/requests", 5);
    registry.drainInto(registry);
    EXPECT_EQ(registry.counter("serve/requests"), 5u);
}

TEST(Metrics, ScopedPhaseSampleSurvivesRepeatedDrainsExactlyOnce)
{
    MetricsRegistry shard;
    {
        ScopedPhase phase(shard, "serve");
        ScopedPhase inner(shard, "query");
    }
    MetricsRegistry central;
    shard.drainInto(central);
    shard.drainInto(central);
    shard.drainInto(central);
    EXPECT_EQ(central.phase("serve/query").count, 1u);
    EXPECT_EQ(central.phase("serve").count, 1u);
}

TEST(Metrics, ConcurrentAddsDuringDrainsLoseNothing)
{
    // Writers hammer a shard while a drainer repeatedly folds it into
    // the central registry; every increment must land exactly once
    // across {central after all drains} + {whatever stayed in shard}.
    MetricsRegistry shard;
    MetricsRegistry central;
    constexpr std::uint64_t perThread = 20000;
    constexpr unsigned writers = 4;

    std::vector<std::thread> threads;
    threads.reserve(writers + 1);
    for (unsigned t = 0; t < writers; ++t) {
        threads.emplace_back([&shard]() {
            for (std::uint64_t i = 0; i < perThread; ++i) {
                shard.add("serve/requests");
                shard.addPhaseSample("serve/query", 0.001);
            }
        });
    }
    threads.emplace_back([&shard, &central]() {
        for (int i = 0; i < 200; ++i)
            shard.drainInto(central);
    });
    for (auto &thread : threads)
        thread.join();
    shard.drainInto(central);

    EXPECT_EQ(central.counter("serve/requests"),
              writers * perThread);
    EXPECT_EQ(central.phase("serve/query").count,
              writers * perThread);
    EXPECT_EQ(shard.counter("serve/requests"), 0u);
}
