/**
 * @file
 * Tests for CRC32 and atomic file writes.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/scratch_dir.hh"
#include "support/io_util.hh"

using namespace mosaic;

namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream file(path);
    std::ostringstream out;
    out << file.rdbuf();
    return out.str();
}

} // namespace

TEST(Crc32, MatchesKnownVectors)
{
    // The classic IEEE 802.3 check value.
    EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
    EXPECT_EQ(crc32("", 0), 0u);
}

TEST(Crc32, IncrementalEqualsOneShot)
{
    const char *data = "the quick brown fox jumps over the lazy dog";
    std::size_t size = 43, split = 17;
    std::uint32_t oneShot = crc32(data, size);
    std::uint32_t partial = crc32(data, split);
    EXPECT_EQ(crc32(data + split, size - split, partial), oneShot);
}

TEST(Crc32, DetectsSingleBitFlip)
{
    std::uint8_t buf[32] = {0};
    std::uint32_t before = crc32(buf, sizeof(buf));
    buf[13] ^= 0x04;
    EXPECT_NE(crc32(buf, sizeof(buf)), before);
}

TEST(IoUtil, TempPathAppendsSuffix)
{
    EXPECT_EQ(tempPathFor("a/b.csv"), "a/b.csv.tmp");
}

TEST(IoUtil, WriteFileAtomicCreatesAndReplaces)
{
    test::ScratchDir scratch;
    std::string path = scratch.file("atomic.txt");
    ASSERT_TRUE(writeFileAtomic(path, "first\n").ok());
    EXPECT_EQ(slurp(path), "first\n");

    ASSERT_TRUE(writeFileAtomic(path, "second\n").ok());
    EXPECT_EQ(slurp(path), "second\n");

    // No staging file survives a successful publish.
    FILE *tmp = std::fopen(tempPathFor(path).c_str(), "rb");
    EXPECT_EQ(tmp, nullptr);
    if (tmp)
        std::fclose(tmp);
}

TEST(IoUtil, WriteFileAtomicFailsIntoIoError)
{
    auto result = writeFileAtomic("no_such_dir/x.txt", "data");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().category(), ErrorCategory::Io);
}

TEST(IoUtil, RemoveFileIfExistsIgnoresMissing)
{
    removeFileIfExists("definitely_not_here.txt"); // must not throw
    test::ScratchDir scratch;
    std::string path = scratch.file("remove.txt");
    ASSERT_TRUE(writeFileAtomic(path, "x").ok());
    removeFileIfExists(path);
    FILE *gone = std::fopen(path.c_str(), "rb");
    EXPECT_EQ(gone, nullptr);
    if (gone)
        std::fclose(gone);
}

TEST(IoUtil, RenameFileReportsMissingSource)
{
    auto result = renameFile("missing_src.txt", "dst.txt");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().category(), ErrorCategory::Io);
}
