/**
 * @file
 * Tests for the logging helpers, most importantly that concurrent
 * warn()/inform() calls from campaign worker threads emit whole lines
 * (the progress output used to interleave mid-line under load).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/logging.hh"

using namespace mosaic;

TEST(Logging, InformAndWarnPrefixLines)
{
    ::testing::internal::CaptureStderr();
    mosaic_inform("hello ", 42);
    mosaic_warn("watch out: ", 7, " things");
    std::string captured = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(captured, "info: hello 42\nwarn: watch out: 7 things\n");
}

TEST(Logging, ConcurrentProgressLinesNeverTear)
{
    // Hammer the logger from several threads with messages whose
    // payload identifies the writer; every captured line must be one
    // writer's complete message, never a mid-line interleave.
    constexpr int kThreads = 8;
    constexpr int kLinesPerThread = 200;

    ::testing::internal::CaptureStderr();
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([t] {
            const std::string payload(32, static_cast<char>('a' + t));
            for (int i = 0; i < kLinesPerThread; ++i)
                mosaic_inform("t", t, " ", i, " ", payload);
        });
    }
    for (auto &thread : pool)
        thread.join();
    std::string captured = ::testing::internal::GetCapturedStderr();

    std::istringstream lines(captured);
    std::string line;
    std::vector<int> seen(kThreads, 0);
    std::size_t total = 0;
    while (std::getline(lines, line)) {
        ++total;
        // Expected exact shape: "info: t<T> <i> <32x letter>".
        int t = -1, i = -1;
        char letters[64] = {0};
        ASSERT_EQ(std::sscanf(line.c_str(), "info: t%d %d %63s", &t, &i,
                              letters),
                  3)
            << "torn line: " << line;
        ASSERT_GE(t, 0);
        ASSERT_LT(t, kThreads);
        EXPECT_EQ(std::string(letters),
                  std::string(32, static_cast<char>('a' + t)))
            << "torn line: " << line;
        ++seen[t];
    }
    EXPECT_EQ(total,
              static_cast<std::size_t>(kThreads) * kLinesPerThread);
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(seen[t], kLinesPerThread) << "thread " << t;
}
