/**
 * @file
 * Tests for the deterministic fault injector.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "support/fault_injector.hh"

using namespace mosaic;

namespace
{

/** Reset the process-wide injector around every test. */
class FaultInjectorTest : public ::testing::Test
{
  protected:
    void SetUp() override { faults().reset(); }
    void TearDown() override { faults().reset(); }
};

} // namespace

TEST_F(FaultInjectorTest, DisarmedSitesNeverFire)
{
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(faults().shouldFail(FaultSite::TraceOpen));
    // Unarmed sites take the cheap path and do not count hits.
    EXPECT_EQ(faults().hits(FaultSite::TraceOpen), 0u);
}

TEST_F(FaultInjectorTest, ArmedSitesCountHits)
{
    faults().arm(FaultSite::TraceOpen, 5);
    (void)faults().shouldFail(FaultSite::TraceOpen);
    (void)faults().shouldFail(FaultSite::TraceOpen);
    EXPECT_EQ(faults().hits(FaultSite::TraceOpen), 2u);
}

TEST_F(FaultInjectorTest, FiresOnNthHitOnly)
{
    faults().arm(FaultSite::CsvOpen, 3);
    EXPECT_FALSE(faults().shouldFail(FaultSite::CsvOpen)); // 1st
    EXPECT_FALSE(faults().shouldFail(FaultSite::CsvOpen)); // 2nd
    EXPECT_TRUE(faults().shouldFail(FaultSite::CsvOpen));  // 3rd fires
    EXPECT_FALSE(faults().shouldFail(FaultSite::CsvOpen)); // 4th
}

TEST_F(FaultInjectorTest, ZeroMeansEveryHit)
{
    faults().arm(FaultSite::LassoNan, 0);
    EXPECT_TRUE(faults().shouldFail(FaultSite::LassoNan));
    EXPECT_TRUE(faults().shouldFail(FaultSite::LassoNan));
}

TEST_F(FaultInjectorTest, SitesAreIndependent)
{
    faults().arm(FaultSite::TraceOpen, 1);
    EXPECT_FALSE(faults().shouldFail(FaultSite::TraceCorrupt));
    EXPECT_TRUE(faults().shouldFail(FaultSite::TraceOpen));
}

TEST_F(FaultInjectorTest, ResetDisarmsAndClearsCounters)
{
    faults().arm(FaultSite::TraceOpen, 1);
    (void)faults().shouldFail(FaultSite::TraceOpen);
    faults().reset();
    EXPECT_EQ(faults().hits(FaultSite::TraceOpen), 0u);
    EXPECT_FALSE(faults().shouldFail(FaultSite::TraceOpen));
}

TEST_F(FaultInjectorTest, SiteNamesRoundTrip)
{
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(FaultSite::NumSites); ++i) {
        auto site = static_cast<FaultSite>(i);
        auto parsed = faultSiteByName(faultSiteName(site));
        ASSERT_TRUE(parsed.ok()) << faultSiteName(site);
        EXPECT_EQ(parsed.value(), site);
    }
    EXPECT_FALSE(faultSiteByName("no-such-site").ok());
    EXPECT_EQ(faultSiteByName("bogus").error().category(),
              ErrorCategory::Config);
}

TEST_F(FaultInjectorTest, ConfigureParsesSpec)
{
    auto result = faults().configure("trace-open:3,csv-truncate:*,seed:9");
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(faults().shouldFail(FaultSite::TraceOpen)); // 1st of 3
    EXPECT_TRUE(faults().shouldFail(FaultSite::CsvTruncate)); // every
    EXPECT_TRUE(faults().shouldFail(FaultSite::CsvTruncate));
}

TEST_F(FaultInjectorTest, ConfigureRejectsGarbage)
{
    EXPECT_FALSE(faults().configure("not-a-site:1").ok());
    EXPECT_FALSE(faults().configure("trace-open").ok());
    EXPECT_FALSE(faults().configure("trace-open:abc").ok());
    EXPECT_TRUE(faults().configure("").ok());
}

TEST_F(FaultInjectorTest, ConcurrentHittersNeverLoseCountsAndFireOnce)
{
    // Campaign workers hammer shared fault sites concurrently; the
    // lock-free hit path must not lose counts, and "fire on the nth
    // hit" must fire for exactly one of the racing threads.
    constexpr int threads = 8;
    constexpr std::uint64_t perThread = 20000;
    constexpr std::uint64_t fireOn = threads * perThread / 2;
    faults().arm(FaultSite::TraceOpen, fireOn);

    std::atomic<std::uint64_t> fired{0};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            for (std::uint64_t i = 0; i < perThread; ++i) {
                if (faults().shouldFail(FaultSite::TraceOpen))
                    fired.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (auto &thread : pool)
        thread.join();

    EXPECT_EQ(faults().hits(FaultSite::TraceOpen),
              static_cast<std::uint64_t>(threads) * perThread);
    EXPECT_EQ(fired.load(), 1u);
}

TEST_F(FaultInjectorTest, ConcurrentEveryHitModeFiresForAllThreads)
{
    constexpr int threads = 4;
    constexpr std::uint64_t perThread = 5000;
    faults().arm(FaultSite::CsvOpen, 0); // every hit fires

    std::atomic<std::uint64_t> fired{0};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            for (std::uint64_t i = 0; i < perThread; ++i) {
                if (faults().shouldFail(FaultSite::CsvOpen))
                    fired.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (auto &thread : pool)
        thread.join();

    EXPECT_EQ(fired.load(),
              static_cast<std::uint64_t>(threads) * perThread);
    EXPECT_EQ(faults().hits(FaultSite::CsvOpen),
              static_cast<std::uint64_t>(threads) * perThread);
}

TEST_F(FaultInjectorTest, CorruptBufferIsDeterministicPerSeed)
{
    std::uint8_t a[64], b[64], c[64];
    std::memset(a, 0xAA, sizeof(a));
    std::memcpy(b, a, sizeof(a));
    std::memcpy(c, a, sizeof(a));

    faults().setSeed(7);
    faults().corruptBuffer(a, sizeof(a));
    faults().setSeed(7);
    faults().corruptBuffer(b, sizeof(b));
    faults().setSeed(8);
    faults().corruptBuffer(c, sizeof(c));

    EXPECT_EQ(std::memcmp(a, b, sizeof(a)), 0); // same seed, same damage
    std::uint8_t clean[64];
    std::memset(clean, 0xAA, sizeof(clean));
    EXPECT_NE(std::memcmp(a, clean, sizeof(a)), 0); // damage happened
    EXPECT_NE(std::memcmp(a, c, sizeof(a)), 0);     // seed matters
}
