/**
 * @file
 * Equivalence tests for the vectorized key/tag scans.
 *
 * The scans in support/simd.hh are drop-in replacements for scalar
 * first-match (and last-match) loops in the replay hot path; the whole
 * correctness story of the SIMD kernel rests on every tier returning
 * the same index for the same input. These tests fuzz all three
 * primitives (findKey, findKey32, findKeyLast) across every reachable
 * tier, every count 1..32 (covering the 4-way TLBs, 8/16-way caches
 * and the 32-entry fully-associative PWC), needle present / absent /
 * duplicated, and misaligned buffer offsets (the set base address is
 * never guaranteed 16-byte aligned).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "support/random.hh"
#include "support/simd.hh"

using namespace mosaic;
using namespace mosaic::simd;

namespace
{

/** Scalar reference: lowest match. */
template <typename T>
int
refFirst(const T *keys, unsigned count, T needle)
{
    for (unsigned i = 0; i < count; ++i)
        if (keys[i] == needle)
            return static_cast<int>(i);
    return -1;
}

/** Scalar reference: highest match. */
template <typename T>
int
refLast(const T *keys, unsigned count, T needle)
{
    int best = -1;
    for (unsigned i = 0; i < count; ++i)
        if (keys[i] == needle)
            best = static_cast<int>(i);
    return best;
}

/** Tiers reachable in this binary (compiled ceiling applies). */
std::vector<Tier>
reachableTiers()
{
    std::vector<Tier> tiers{Tier::Scalar};
    if (compiledTier() >= Tier::Sse2)
        tiers.push_back(Tier::Sse2);
    if (compiledTier() >= Tier::Avx2)
        tiers.push_back(Tier::Avx2);
    return tiers;
}

/** Restore the ambient tier even if an assertion aborts the test. */
struct TierGuard
{
    Tier saved = activeTier();
    ~TierGuard() { setTier(saved); }
};

} // namespace

TEST(Simd, SetTierClampsToCompiledTier)
{
    TierGuard guard;
    setTier(Tier::Avx2);
    EXPECT_LE(activeTier(), compiledTier());
    setTier(Tier::Scalar);
    EXPECT_EQ(activeTier(), Tier::Scalar);
}

TEST(Simd, FindKey64AllTiersMatchReference)
{
    TierGuard guard;
    Rng rng(0xf00d);
    for (unsigned count = 1; count <= 32; ++count) {
        for (int trial = 0; trial < 200; ++trial) {
            // Offset into an oversized buffer: exercises unaligned
            // loads and proves the scans never read past count.
            std::vector<std::uint64_t> buffer(count + 9,
                                              0xdeadbeefcafe0000ULL);
            std::uint64_t *keys = buffer.data() + (trial % 4);
            for (unsigned i = 0; i < count; ++i)
                keys[i] = rng.nextBounded(count + 3); // dups likely
            std::uint64_t needle = rng.nextBounded(count + 3);
            int expected = refFirst(keys, count, needle);
            for (Tier tier : reachableTiers()) {
                setTier(tier);
                EXPECT_EQ(findKey(keys, count, needle), expected)
                    << tierName(tier) << " count=" << count
                    << " trial=" << trial;
            }
        }
    }
}

TEST(Simd, FindKey32AllTiersMatchReference)
{
    TierGuard guard;
    Rng rng(0xbeef);
    for (unsigned count = 1; count <= 32; ++count) {
        for (int trial = 0; trial < 200; ++trial) {
            std::vector<std::uint32_t> buffer(count + 17, 0xabad1deau);
            std::uint32_t *keys = buffer.data() + (trial % 8);
            for (unsigned i = 0; i < count; ++i)
                keys[i] =
                    static_cast<std::uint32_t>(rng.nextBounded(count + 3));
            auto needle =
                static_cast<std::uint32_t>(rng.nextBounded(count + 3));
            int expected = refFirst(keys, count, needle);
            for (Tier tier : reachableTiers()) {
                setTier(tier);
                EXPECT_EQ(findKey32(keys, count, needle), expected)
                    << tierName(tier) << " count=" << count
                    << " trial=" << trial;
            }
        }
    }
}

TEST(Simd, FindKeyLastAllTiersMatchReference)
{
    TierGuard guard;
    Rng rng(0xcafe);
    for (unsigned count = 1; count <= 32; ++count) {
        for (int trial = 0; trial < 200; ++trial) {
            std::vector<std::uint64_t> buffer(count + 9, ~0ULL - 1);
            std::uint64_t *keys = buffer.data() + (trial % 4);
            for (unsigned i = 0; i < count; ++i)
                keys[i] = rng.nextBounded(count + 3);
            std::uint64_t needle = rng.nextBounded(count + 3);
            int expected = refLast(keys, count, needle);
            for (Tier tier : reachableTiers()) {
                setTier(tier);
                EXPECT_EQ(findKeyLast(keys, count, needle), expected)
                    << tierName(tier) << " count=" << count
                    << " trial=" << trial;
            }
        }
    }
}

TEST(Simd, SentinelNeedleFindsEmptyWays)
{
    // The production use of findKeyLast: locating the last ~0 slot in
    // a partially warmed set.
    TierGuard guard;
    constexpr std::uint64_t kEmpty = ~0ULL;
    for (unsigned count : {4u, 8u, 32u}) {
        std::vector<std::uint64_t> keys(count, kEmpty);
        for (Tier tier : reachableTiers()) {
            setTier(tier);
            EXPECT_EQ(findKeyLast(keys.data(), count, kEmpty),
                      static_cast<int>(count - 1))
                << tierName(tier);
        }
        // Fill from the front, as warm-up does.
        for (unsigned filled = 1; filled <= count; ++filled) {
            keys[filled - 1] = filled; // any non-sentinel key
            int expected = filled == count ? -1
                                           : static_cast<int>(count - 1);
            for (Tier tier : reachableTiers()) {
                setTier(tier);
                EXPECT_EQ(findKeyLast(keys.data(), count, kEmpty),
                          expected)
                    << tierName(tier) << " filled=" << filled;
            }
        }
    }
}
