/**
 * @file
 * Tests for alignment helpers, literals, and the logging macros.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "support/logging.hh"
#include "support/types.hh"

using namespace mosaic;

TEST(Literals, ByteUnits)
{
    EXPECT_EQ(1_KiB, 1024u);
    EXPECT_EQ(2_MiB, 2u * 1024 * 1024);
    EXPECT_EQ(1_GiB, 1024ull * 1024 * 1024);
}

TEST(Align, DownAndUp)
{
    EXPECT_EQ(alignDown(4097, 4096), 4096u);
    EXPECT_EQ(alignDown(4096, 4096), 4096u);
    EXPECT_EQ(alignUp(4097, 4096), 8192u);
    EXPECT_EQ(alignUp(4096, 4096), 4096u);
    EXPECT_EQ(alignUp(0, 4096), 0u);
}

TEST(PowerOfTwo, Predicate)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(4096));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(4097));
}

TEST(FloorLog2, KnownValues)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(floorLog2(5000), 12u);
}

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(mosaic_panic("boom ", 42), std::logic_error);
}

TEST(Logging, FatalThrowsRuntimeError)
{
    EXPECT_THROW(mosaic_fatal("bad config"), std::runtime_error);
}

TEST(Logging, AssertPassesAndFails)
{
    EXPECT_NO_THROW(mosaic_assert(1 + 1 == 2, "fine"));
    EXPECT_THROW(mosaic_assert(1 + 1 == 3, "broken"), std::logic_error);
}

TEST(Logging, MessagesCarryContext)
{
    try {
        mosaic_panic("value was ", 17);
        FAIL() << "should have thrown";
    } catch (const std::logic_error &error) {
        std::string what = error.what();
        EXPECT_NE(what.find("value was 17"), std::string::npos);
        EXPECT_NE(what.find("test_types.cc"), std::string::npos);
    }
}
