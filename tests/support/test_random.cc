/**
 * @file
 * Tests for the deterministic RNG substrate.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/random.hh"

using namespace mosaic;

TEST(SplitMix64, IsDeterministic)
{
    std::uint64_t s1 = 42, s2 = 42;
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(splitMix64(s1), splitMix64(s2));
}

TEST(SplitMix64, AdvancesState)
{
    std::uint64_t state = 42;
    std::uint64_t first = splitMix64(state);
    std::uint64_t second = splitMix64(state);
    EXPECT_NE(first, second);
}

TEST(HashU64, IsStateless)
{
    EXPECT_EQ(hashU64(123), hashU64(123));
    EXPECT_NE(hashU64(123), hashU64(124));
}

TEST(Rng, SameSeedSameStream)
{
    Rng a(7), b(7);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(7), b(8);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 3);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(99);
    for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Rng, BoundedOneAlwaysZero)
{
    Rng rng(5);
    for (int i = 0; i < 50; ++i)
        ASSERT_EQ(rng.nextBounded(1), 0u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        double value = rng.nextDouble();
        ASSERT_GE(value, 0.0);
        ASSERT_LT(value, 1.0);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        std::int64_t value = rng.nextRange(-3, 3);
        ASSERT_GE(value, -3);
        ASSERT_LE(value, 3);
        saw_lo |= value == -3;
        saw_hi |= value == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, BoundedParetoWithinBounds)
{
    Rng rng(13);
    for (int i = 0; i < 2000; ++i) {
        double value = rng.nextBoundedPareto(1.5, 1.0, 100.0);
        ASSERT_GE(value, 1.0);
        ASSERT_LE(value, 100.0);
    }
}

TEST(Rng, BoundedParetoIsSkewedLow)
{
    Rng rng(17);
    int low = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
        if (rng.nextBoundedPareto(1.5, 1.0, 100.0) < 10.0)
            ++low;
    }
    // A heavy-tailed distribution on [1,100] puts most mass below 10.
    EXPECT_GT(low, n * 3 / 4);
}

TEST(Rng, GeometricMeanRoughlyInverseP)
{
    Rng rng(23);
    const double p = 0.25;
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextGeometric(p));
    double mean = sum / n;
    EXPECT_NEAR(mean, 1.0 / p, 0.2);
}

TEST(Rng, GeometricAlwaysAtLeastOne)
{
    Rng rng(29);
    for (int i = 0; i < 1000; ++i)
        ASSERT_GE(rng.nextGeometric(0.9), 1u);
    for (int i = 0; i < 10; ++i)
        ASSERT_EQ(rng.nextGeometric(1.0), 1u);
}

TEST(Rng, UniformCoverage)
{
    // All 8 buckets of a bounded draw should be populated.
    Rng rng(31);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}
