/**
 * @file
 * Tests for retry with capped exponential backoff.
 */

#include <gtest/gtest.h>

#include "support/retry.hh"

using namespace mosaic;

namespace
{

/** Zero-delay policy so tests never sleep. */
RetryPolicy
fastPolicy(std::size_t attempts)
{
    RetryPolicy policy;
    policy.maxAttempts = attempts;
    policy.initialDelay = std::chrono::milliseconds(0);
    return policy;
}

} // namespace

TEST(Retry, SucceedsFirstTry)
{
    std::size_t calls = 0, retries = 99;
    auto result = retryWithBackoff(
        fastPolicy(3),
        [&]() -> Result<int> {
            ++calls;
            return 1;
        },
        &retries);
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(calls, 1u);
    EXPECT_EQ(retries, 0u);
}

TEST(Retry, RetriesTransientUntilSuccess)
{
    std::size_t calls = 0, retries = 0;
    auto result = retryWithBackoff(
        fastPolicy(5),
        [&]() -> Result<int> {
            if (++calls < 3)
                return ioError("flaky");
            return 7;
        },
        &retries);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value(), 7);
    EXPECT_EQ(calls, 3u);
    EXPECT_EQ(retries, 2u);
}

TEST(Retry, GivesUpAfterMaxAttempts)
{
    std::size_t calls = 0;
    auto result = retryWithBackoff(fastPolicy(3), [&]() -> Result<int> {
        ++calls;
        return ioError("always down");
    });
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(calls, 3u);
}

TEST(Retry, NonTransientFailsFast)
{
    std::size_t calls = 0;
    auto result = retryWithBackoff(fastPolicy(5), [&]() -> Result<int> {
        ++calls;
        return corruptError("CRC mismatch");
    });
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(calls, 1u); // retrying corruption cannot help
}

TEST(Retry, ZeroAttemptsStillRunsOnce)
{
    std::size_t calls = 0;
    auto result = retryWithBackoff(fastPolicy(0), [&]() -> Result<int> {
        ++calls;
        return 4;
    });
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(calls, 1u);
}

TEST(Retry, WorksWithVoidResults)
{
    std::size_t calls = 0;
    auto result = retryWithBackoff(fastPolicy(4), [&]() -> Result<void> {
        if (++calls < 2)
            return ioError("flaky");
        return {};
    });
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(calls, 2u);
}
