/**
 * @file
 * Tests for the SimContext dependency seam: the global context binds
 * the process-wide services, explicit contexts isolate observability
 * into per-worker shards, and context-threaded APIs publish where the
 * context says, not into the global registry.
 */

#include <gtest/gtest.h>

#include "support/sim_context.hh"

using namespace mosaic;

TEST(SimContext, GlobalContextBindsProcessWideServices)
{
    const SimContext &context = globalSimContext();
    EXPECT_EQ(&context.metrics(), &metrics());
    EXPECT_EQ(&context.faults(), &faults());
    EXPECT_EQ(context.workerId(), 0u);

    // Default-constructed contexts bind the same services.
    SimContext fresh;
    EXPECT_EQ(&fresh.metrics(), &metrics());
    EXPECT_EQ(&fresh.faults(), &faults());
}

TEST(SimContext, ExplicitContextRoutesIntoShard)
{
    MetricsRegistry shard;
    SimContext context(shard, faults(), 42, 3);
    EXPECT_EQ(&context.metrics(), &shard);
    EXPECT_EQ(context.seed(), 42u);
    EXPECT_EQ(context.workerId(), 3u);

    std::uint64_t global_before = metrics().counter("simctx/test");
    context.metrics().add("simctx/test", 7);
    EXPECT_EQ(shard.counter("simctx/test"), 7u);
    EXPECT_EQ(metrics().counter("simctx/test"), global_before);
}

TEST(SimContext, WithSeedCopiesEverythingElse)
{
    MetricsRegistry shard;
    SimContext context(shard, faults(), 1, 5);
    SimContext reseeded = context.withSeed(99);
    EXPECT_EQ(reseeded.seed(), 99u);
    EXPECT_EQ(&reseeded.metrics(), &shard);
    EXPECT_EQ(&reseeded.faults(), &faults());
    EXPECT_EQ(reseeded.workerId(), 5u);
    EXPECT_EQ(context.seed(), 1u); // original untouched
}
