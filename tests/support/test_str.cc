/**
 * @file
 * Tests for string/formatting helpers and the text-table renderer.
 */

#include <gtest/gtest.h>

#include "support/str.hh"
#include "support/types.hh"

using namespace mosaic;

TEST(SplitString, BasicFields)
{
    auto fields = splitString("a,b,c", ',');
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[1], "b");
    EXPECT_EQ(fields[2], "c");
}

TEST(SplitString, PreservesEmptyFields)
{
    auto fields = splitString(",x,", ',');
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_EQ(fields[0], "");
    EXPECT_EQ(fields[1], "x");
    EXPECT_EQ(fields[2], "");
}

TEST(SplitString, NoDelimiterSingleField)
{
    auto fields = splitString("hello", ',');
    ASSERT_EQ(fields.size(), 1u);
    EXPECT_EQ(fields[0], "hello");
}

TEST(TrimString, StripsBothEnds)
{
    EXPECT_EQ(trimString("  abc \t\n"), "abc");
    EXPECT_EQ(trimString("abc"), "abc");
    EXPECT_EQ(trimString("   "), "");
    EXPECT_EQ(trimString(""), "");
}

TEST(FormatDouble, Precision)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(2.0, 0), "2");
}

TEST(FormatPercent, FractionToPercent)
{
    EXPECT_EQ(formatPercent(0.423), "42.3%");
    EXPECT_EQ(formatPercent(1.92, 0), "192%");
}

TEST(FormatBytes, PicksUnits)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(2_KiB), "2.0 KiB");
    EXPECT_EQ(formatBytes(96_MiB), "96.0 MiB");
    EXPECT_EQ(formatBytes(3_GiB), "3.0 GiB");
}

TEST(Padding, LeftAndRight)
{
    EXPECT_EQ(padLeft("ab", 4), "  ab");
    EXPECT_EQ(padRight("ab", 4), "ab  ");
    EXPECT_EQ(padLeft("abcd", 2), "abcd");
}

TEST(TextTable, AlignsColumns)
{
    TextTable table;
    table.setHeader({"name", "value"});
    table.addRow({"x", "1"});
    table.addRow({"longer", "22"});
    std::string out = table.render();
    // Every line has the same length.
    auto lines = splitString(out, '\n');
    ASSERT_GE(lines.size(), 4u);
    EXPECT_EQ(lines[0].size(), lines[2].size());
    EXPECT_EQ(lines[2].size(), lines[3].size());
    EXPECT_EQ(table.numRows(), 2u);
}

TEST(TextTable, RendersWithoutHeader)
{
    TextTable table;
    table.addRow({"a", "b"});
    std::string out = table.render();
    EXPECT_NE(out.find("a"), std::string::npos);
    EXPECT_EQ(out.find("---"), std::string::npos);
}

TEST(ParseNonNegativeDoubleFull, AcceptsPlainDecimalsAndExponents)
{
    double out = -1.0;
    EXPECT_TRUE(mosaic::parseNonNegativeDoubleFull("0.0125", out));
    EXPECT_DOUBLE_EQ(out, 0.0125);
    EXPECT_TRUE(mosaic::parseNonNegativeDoubleFull("3", out));
    EXPECT_DOUBLE_EQ(out, 3.0);
    EXPECT_TRUE(mosaic::parseNonNegativeDoubleFull("1e-3", out));
    EXPECT_DOUBLE_EQ(out, 0.001);
    EXPECT_TRUE(mosaic::parseNonNegativeDoubleFull("0.000000", out));
    EXPECT_DOUBLE_EQ(out, 0.0);
}

TEST(ParseNonNegativeDoubleFull, RejectsDamage)
{
    double out = 7.0;
    EXPECT_FALSE(mosaic::parseNonNegativeDoubleFull("", out));
    EXPECT_FALSE(mosaic::parseNonNegativeDoubleFull("-0.5", out));
    EXPECT_FALSE(mosaic::parseNonNegativeDoubleFull("+1", out));
    EXPECT_FALSE(mosaic::parseNonNegativeDoubleFull("nan", out));
    EXPECT_FALSE(mosaic::parseNonNegativeDoubleFull("inf", out));
    EXPECT_FALSE(mosaic::parseNonNegativeDoubleFull("0.5x", out));
    EXPECT_FALSE(mosaic::parseNonNegativeDoubleFull("0x1p3", out));
    EXPECT_FALSE(mosaic::parseNonNegativeDoubleFull("1e999", out));
    EXPECT_EQ(out, 7.0); // untouched on failure
}
