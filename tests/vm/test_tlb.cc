/**
 * @file
 * Tests for the TLB arrays and the two-level TLB system, including the
 * per-microarchitecture L2 policies of Table 4.
 */

#include <gtest/gtest.h>

#include "vm/tlb.hh"

using namespace mosaic;
using namespace mosaic::vm;
using alloc::PageSize;

TEST(TlbArray, AbsentArrayAlwaysMisses)
{
    TlbArray array(0, 0);
    EXPECT_FALSE(array.present());
    EXPECT_FALSE(array.lookup(42));
    array.insert(42); // no-op, no crash
    EXPECT_FALSE(array.lookup(42));
}

TEST(TlbArray, InsertThenHit)
{
    TlbArray array(16, 4);
    EXPECT_FALSE(array.lookup(100));
    array.insert(100);
    EXPECT_TRUE(array.lookup(100));
    EXPECT_EQ(array.hits, 1u);
    EXPECT_EQ(array.misses, 1u);
}

TEST(TlbArray, FullyAssociativeWhenWaysExceedEntries)
{
    TlbArray array(4, 16);
    EXPECT_EQ(array.numWays(), 4u);
    EXPECT_EQ(array.numSets(), 1u);
}

TEST(TlbArray, LruEvictionWithinSet)
{
    // Fully associative 2-entry array.
    TlbArray array(2, 2);
    array.insert(1 << 2);
    array.insert(2 << 2);
    array.lookup(1 << 2);    // refresh key 1
    array.insert(3 << 2);    // evicts key 2
    EXPECT_TRUE(array.lookup(1 << 2));
    EXPECT_FALSE(array.lookup(2 << 2));
    EXPECT_TRUE(array.lookup(3 << 2));
}

TEST(TlbArray, CapacityBound)
{
    // Insert more distinct keys than entries: at most `entries` can hit.
    TlbArray array(16, 4);
    for (std::uint64_t k = 0; k < 64; ++k)
        array.insert(k << 2);
    unsigned resident = 0;
    for (std::uint64_t k = 0; k < 64; ++k)
        resident += array.lookup(k << 2) ? 1 : 0;
    EXPECT_LE(resident, 16u);
}

TEST(TlbArray, FlushDropsEverything)
{
    TlbArray array(16, 4);
    array.insert(5);
    array.flush();
    EXPECT_FALSE(array.lookup(5));
}

namespace
{

L2TlbConfig
sandyBridgeL2()
{
    L2TlbConfig l2;
    l2.entries = 512;
    l2.ways = 4;
    l2.shares2m = false;
    l2.entries1g = 0;
    return l2;
}

L2TlbConfig
broadwellL2()
{
    L2TlbConfig l2;
    l2.entries = 1536;
    l2.ways = 12;
    l2.shares2m = true;
    l2.entries1g = 16;
    return l2;
}

} // namespace

TEST(TlbSystem, MissFillHitSequence)
{
    TlbSystem tlb(L1TlbConfig{}, sandyBridgeL2());
    VirtAddr va = 0x12345678000ULL;
    EXPECT_EQ(tlb.lookup(va, PageSize::Page4K), TlbOutcome::Miss);
    tlb.fill(va, PageSize::Page4K);
    EXPECT_EQ(tlb.lookup(va, PageSize::Page4K), TlbOutcome::L1Hit);
    EXPECT_EQ(tlb.fullMisses(), 1u);
    EXPECT_EQ(tlb.l1Hits(), 1u);
}

TEST(TlbSystem, L2HitAfterL1Eviction)
{
    TlbSystem tlb(L1TlbConfig{}, sandyBridgeL2());
    // Fill 64 + extra 4KB translations mapping to distinct L1 slots;
    // early ones fall out of the 64-entry L1 but stay in the 512-entry
    // L2.
    for (std::uint64_t i = 0; i < 256; ++i)
        tlb.fill(i * 4_KiB, PageSize::Page4K);
    auto outcome = tlb.lookup(0, PageSize::Page4K);
    EXPECT_EQ(outcome, TlbOutcome::L2Hit);
    EXPECT_EQ(tlb.l2Hits(), 1u);
    // An L2 hit promotes to L1: next access is an L1 hit.
    EXPECT_EQ(tlb.lookup(0, PageSize::Page4K), TlbOutcome::L1Hit);
}

TEST(TlbSystem, SandyBridge2mSkipsL2)
{
    // SNB's L2 TLB holds 4KB translations only: a 2MB translation
    // evicted from L1 must walk again (Miss, not L2Hit).
    TlbSystem tlb(L1TlbConfig{}, sandyBridgeL2());
    for (std::uint64_t i = 0; i < 64; ++i)
        tlb.fill(i * 2_MiB, PageSize::Page2M);
    EXPECT_EQ(tlb.lookup(0, PageSize::Page2M), TlbOutcome::Miss);
    EXPECT_FALSE(tlb.l2Holds(PageSize::Page2M));
}

TEST(TlbSystem, Broadwell2mSharesL2)
{
    TlbSystem tlb(L1TlbConfig{}, broadwellL2());
    for (std::uint64_t i = 0; i < 64; ++i)
        tlb.fill(i * 2_MiB, PageSize::Page2M);
    EXPECT_EQ(tlb.lookup(0, PageSize::Page2M), TlbOutcome::L2Hit);
    EXPECT_TRUE(tlb.l2Holds(PageSize::Page2M));
}

TEST(TlbSystem, Broadwell1gHasDedicatedArray)
{
    TlbSystem tlb(L1TlbConfig{}, broadwellL2());
    // Push 8 x 1GB translations: more than the 4-entry L1 but within
    // the 16-entry L2 1GB array.
    for (std::uint64_t i = 0; i < 8; ++i)
        tlb.fill(i * 1_GiB, PageSize::Page1G);
    EXPECT_EQ(tlb.lookup(0, PageSize::Page1G), TlbOutcome::L2Hit);

    TlbSystem snb(L1TlbConfig{}, sandyBridgeL2());
    for (std::uint64_t i = 0; i < 8; ++i)
        snb.fill(i * 1_GiB, PageSize::Page1G);
    EXPECT_EQ(snb.lookup(0, PageSize::Page1G), TlbOutcome::Miss);
}

TEST(TlbSystem, PageSizesDoNotAlias)
{
    // A 2MB translation of a region must not answer 4KB lookups of
    // the same addresses, and vice versa.
    TlbSystem tlb(L1TlbConfig{}, broadwellL2());
    tlb.fill(0x40000000ULL, PageSize::Page2M);
    EXPECT_EQ(tlb.lookup(0x40000000ULL, PageSize::Page4K),
              TlbOutcome::Miss);
}

TEST(TlbSystem, CountersMatchOutcomes)
{
    TlbSystem tlb(L1TlbConfig{}, broadwellL2());
    std::uint64_t h = 0, m = 0, l1 = 0;
    for (std::uint64_t i = 0; i < 3000; ++i) {
        VirtAddr va = (i % 700) * 4_KiB;
        auto outcome = tlb.lookup(va, PageSize::Page4K);
        switch (outcome) {
          case TlbOutcome::L1Hit:
            ++l1;
            break;
          case TlbOutcome::L2Hit:
            ++h;
            break;
          case TlbOutcome::Miss:
            ++m;
            tlb.fill(va, PageSize::Page4K);
            break;
        }
    }
    EXPECT_EQ(tlb.l1Hits(), l1);
    EXPECT_EQ(tlb.l2Hits(), h);
    EXPECT_EQ(tlb.fullMisses(), m);
    EXPECT_EQ(l1 + h + m, 3000u);
    EXPECT_GT(h, 0u);
    EXPECT_GT(m, 0u);
}

class TlbReachTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TlbReachTest, WorkingSetsWithinL1ReachNeverMissTwice)
{
    // Property: a working set of N <= 32 2MB pages (L1 2MB capacity),
    // accessed round-robin, misses each page exactly once.
    std::uint64_t pages = GetParam();
    TlbSystem tlb(L1TlbConfig{}, broadwellL2());
    std::uint64_t misses = 0;
    for (int round = 0; round < 5; ++round) {
        for (std::uint64_t p = 0; p < pages; ++p) {
            if (tlb.lookup(p * 2_MiB, PageSize::Page2M) ==
                TlbOutcome::Miss) {
                ++misses;
                tlb.fill(p * 2_MiB, PageSize::Page2M);
            }
        }
    }
    EXPECT_EQ(misses, pages);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TlbReachTest,
                         ::testing::Values(1u, 4u, 8u, 16u, 32u));

namespace
{

/** One TLB array geometry from Table 4 of the paper. */
struct TlbShape
{
    const char *label;
    std::uint32_t entries;
    std::uint32_t ways;
    std::uint32_t expectWays;
    std::uint32_t expectSets;
};

} // namespace

class TlbShapeTest : public ::testing::TestWithParam<TlbShape>
{
};

TEST_P(TlbShapeTest, GeometryDerivesAndClampsSafely)
{
    // Regression for the ctor hardening: every Table-4 shape —
    // including the degenerate ones (absent arrays, ways exceeding
    // entries) — must derive a sane geometry instead of dividing by
    // zero or mis-sizing the set count.
    const TlbShape &shape = GetParam();
    TlbArray array(shape.entries, shape.ways);
    EXPECT_EQ(array.present(), shape.entries != 0) << shape.label;
    EXPECT_EQ(array.numEntries(), shape.entries) << shape.label;
    EXPECT_EQ(array.numWays(), shape.expectWays) << shape.label;
    EXPECT_EQ(array.numSets(), shape.expectSets) << shape.label;
}

TEST_P(TlbShapeTest, FillsToCapacityAndNoFurther)
{
    // Insert exactly `entries` keys that spread across all sets, then
    // `entries` more: a correct geometry retains exactly one array's
    // worth; a mis-derived set mask would thrash or alias.
    const TlbShape &shape = GetParam();
    TlbArray array(shape.entries, shape.ways);
    if (shape.entries == 0) {
        array.insert(4); // must be a harmless no-op
        EXPECT_FALSE(array.lookup(4));
        return;
    }
    for (std::uint64_t k = 0; k < shape.entries; ++k)
        array.insert(k << 2);
    unsigned resident = 0;
    for (std::uint64_t k = 0; k < shape.entries; ++k)
        resident += array.lookup(k << 2) ? 1 : 0;
    EXPECT_EQ(resident, shape.entries) << shape.label;

    for (std::uint64_t k = shape.entries; k < 2 * shape.entries; ++k)
        array.insert(k << 2);
    resident = 0;
    for (std::uint64_t k = 0; k < 2 * shape.entries; ++k)
        resident += array.lookup(k << 2) ? 1 : 0;
    EXPECT_EQ(resident, shape.entries) << shape.label;
}

INSTANTIATE_TEST_SUITE_P(
    Table4, TlbShapeTest,
    ::testing::Values(
        // L1 arrays (all generations).
        TlbShape{"l1_4k_64x4", 64, 4, 4, 16},
        TlbShape{"l1_2m_32x4", 32, 4, 4, 8},
        // The 4-entry 1GB array: ways == entries, fully associative.
        TlbShape{"l1_1g_4x4", 4, 4, 4, 1},
        // ways > entries must clamp to fully associative, not assert.
        TlbShape{"l1_1g_4x16_clamped", 4, 16, 4, 1},
        // ways == 0 likewise means fully associative.
        TlbShape{"l1_1g_4x0_clamped", 4, 0, 4, 1},
        // L2 arrays: SNB/IVB, HSW, BDW/SKL (+ the 16-entry 1GB side
        // array, fully associative).
        TlbShape{"l2_snb_512x4", 512, 4, 4, 128},
        TlbShape{"l2_hsw_1024x8", 1024, 8, 8, 128},
        TlbShape{"l2_bdw_1536x12", 1536, 12, 12, 128},
        TlbShape{"l2_bdw_1g_16x16", 16, 16, 16, 1},
        // Absent arrays (SNB has no L2 1GB entries): 0 entries must
        // not derive any geometry.
        TlbShape{"absent_0x0", 0, 0, 0, 0},
        TlbShape{"absent_0x4", 0, 4, 0, 0}));

TEST(TlbSystem, FullyAssociative1gArrayRetainsFourPages)
{
    // The 4-entry fully-associative L1 1GB array on a platform with no
    // L2 1GB backing (SandyBridge): 4 huge pages round-robin must miss
    // once each, and a 5th must evict the LRU one.
    TlbSystem tlb(L1TlbConfig{}, sandyBridgeL2());
    for (int round = 0; round < 3; ++round) {
        for (std::uint64_t p = 0; p < 4; ++p) {
            if (tlb.lookup(p * 1_GiB, PageSize::Page1G) ==
                TlbOutcome::Miss)
                tlb.fill(p * 1_GiB, PageSize::Page1G);
        }
    }
    EXPECT_EQ(tlb.fullMisses(), 4u);

    tlb.fill(4 * 1_GiB, PageSize::Page1G); // evicts the LRU page (0)
    EXPECT_EQ(tlb.lookup(0, PageSize::Page1G), TlbOutcome::Miss);
    EXPECT_EQ(tlb.lookup(4 * 1_GiB, PageSize::Page1G),
              TlbOutcome::L1Hit);
}

namespace
{

/**
 * Naive reference of TlbArray's documented replacement contract:
 * linear scans over (key, lastUse) pairs, no SoA split, no vector
 * scans, no repeat-hit memo. Rules, stated literally: lookup hit
 * refreshes lastUse; insert refreshes a resident key; otherwise the
 * victim is the LAST empty way if any way is empty, else the way with
 * the smallest lastUse (timestamps are unique).
 */
class ReferenceTlbArray
{
  public:
    ReferenceTlbArray(std::uint32_t entries, std::uint32_t ways)
        : ways_(ways == 0 || ways > entries ? entries : ways),
          sets_(entries == 0 ? 0 : entries / ways_), keys_(entries, kEmpty),
          lastUse_(entries, 0)
    {
    }

    bool
    lookup(std::uint64_t key)
    {
        if (sets_ == 0)
            return false;
        std::uint64_t base = ((key >> 2) % sets_) * ways_;
        ++clock_;
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (keys_[base + w] == key) {
                lastUse_[base + w] = clock_;
                return true;
            }
        }
        return false;
    }

    void
    insert(std::uint64_t key)
    {
        if (sets_ == 0)
            return;
        std::uint64_t base = ((key >> 2) % sets_) * ways_;
        ++clock_;
        int victim = -1;
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (keys_[base + w] == key) {
                lastUse_[base + w] = clock_;
                return;
            }
        }
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (keys_[base + w] == kEmpty)
                victim = static_cast<int>(w);
        }
        if (victim < 0) {
            victim = 0;
            for (std::uint32_t w = 1; w < ways_; ++w) {
                if (lastUse_[base + w] <
                    lastUse_[base + static_cast<std::uint32_t>(victim)])
                    victim = static_cast<int>(w);
            }
        }
        keys_[base + static_cast<std::uint32_t>(victim)] = key;
        lastUse_[base + static_cast<std::uint32_t>(victim)] = clock_;
    }

  private:
    static constexpr std::uint64_t kEmpty = ~0ULL;
    std::uint32_t ways_;
    std::uint64_t sets_;
    std::vector<std::uint64_t> keys_;
    std::vector<std::uint64_t> lastUse_;
    std::uint64_t clock_ = 0;
};

} // namespace

/**
 * The vectorized lookup/insert paths against the reference, across the
 * geometries the platforms instantiate (set-associative L1/L2 shapes
 * and the small fully-associative arrays). Interleaved lookups and
 * inserts with warm-up, steady-state eviction and re-reference; any
 * divergence in the two-scan victim selection or the repeat-hit memo
 * shows up as a hit/miss mismatch at a concrete step.
 */
TEST(TlbArray, MatchesReferenceModelAcrossGeometries)
{
    struct Shape
    {
        std::uint32_t entries, ways;
    };
    constexpr Shape kShapes[] = {
        {64, 4}, {32, 4}, {4, 4}, {512, 4}, {16, 16}, {32, 0},
    };
    for (const auto &shape : kShapes) {
        TlbArray array(shape.entries, shape.ways);
        ReferenceTlbArray reference(shape.entries, shape.ways);
        std::uint64_t state = 0x243f6a8885a308d3ULL ^ shape.entries;
        auto next = [&state]() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            return state;
        };
        std::uint64_t hits = 0, misses = 0;
        for (int i = 0; i < 50000; ++i) {
            // Keys over ~2x capacity force evictions; low bits carry a
            // fake page-size tag as TlbSystem's makeKey does.
            std::uint64_t key = ((next() % (2 * shape.entries + 3)) << 2) |
                                (next() % 3);
            if (next() % 3 == 0) {
                array.insert(key);
                reference.insert(key);
            } else {
                bool hit = array.lookup(key);
                ASSERT_EQ(hit, reference.lookup(key))
                    << "entries=" << shape.entries
                    << " ways=" << shape.ways << " step " << i;
                hit ? ++hits : ++misses;
            }
        }
        EXPECT_EQ(array.hits, hits);
        EXPECT_EQ(array.misses, misses);
        EXPECT_GT(hits, 0u);
        EXPECT_GT(misses, 0u);
    }
}
