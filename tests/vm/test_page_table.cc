/**
 * @file
 * Tests for physical memory, page-table construction and translation.
 */

#include <gtest/gtest.h>

#include "mosalloc/mosalloc.hh"
#include "vm/page_table.hh"
#include "vm/frame_pool.hh"

using namespace mosaic;
using namespace mosaic::vm;
using alloc::PageSize;

TEST(FramePool, PageTableNodesAreSequential4k)
{
    FramePool mem;
    PhysAddr a = mem.allocPageTableNode();
    PhysAddr b = mem.allocPageTableNode();
    EXPECT_EQ(b - a, 4_KiB);
    EXPECT_EQ(mem.numPageTableNodes(), 2u);
}

TEST(FramePool, DataFramesNaturallyAligned)
{
    FramePool mem;
    PhysAddr small = mem.allocDataFrame(PageSize::Page4K);
    PhysAddr huge = mem.allocDataFrame(PageSize::Page2M);
    PhysAddr giant = mem.allocDataFrame(PageSize::Page1G);
    EXPECT_EQ(small % 4_KiB, 0u);
    EXPECT_EQ(huge % 2_MiB, 0u);
    EXPECT_EQ(giant % 1_GiB, 0u);
    EXPECT_GE(huge, FramePool::dataBase);
}

TEST(LevelHelpers, ShiftsAndIndices)
{
    EXPECT_EQ(levelShift(PtLevel::Pml4), 39u);
    EXPECT_EQ(levelShift(PtLevel::Pt), 12u);
    VirtAddr va = (3ULL << 39) | (5ULL << 30) | (7ULL << 21) | (9ULL << 12);
    EXPECT_EQ(levelIndex(va, PtLevel::Pml4), 3u);
    EXPECT_EQ(levelIndex(va, PtLevel::Pdpt), 5u);
    EXPECT_EQ(levelIndex(va, PtLevel::Pd), 7u);
    EXPECT_EQ(levelIndex(va, PtLevel::Pt), 9u);
}

TEST(LevelHelpers, LeafLevels)
{
    EXPECT_EQ(leafLevel(PageSize::Page4K), PtLevel::Pt);
    EXPECT_EQ(leafLevel(PageSize::Page2M), PtLevel::Pd);
    EXPECT_EQ(leafLevel(PageSize::Page1G), PtLevel::Pdpt);
}

TEST(PageTable, MapAndTranslate4k)
{
    FramePool mem;
    PageTable table(mem);
    VirtAddr va = 0x4000000000ULL;
    table.map(va, PageSize::Page4K, 0x80000000ULL);

    Translation xlate = table.translate(va + 0x123);
    ASSERT_TRUE(xlate.valid);
    EXPECT_EQ(xlate.physAddr, 0x80000123ULL);
    EXPECT_EQ(xlate.pageSize, PageSize::Page4K);
    EXPECT_EQ(xlate.depth, 4u);
}

TEST(PageTable, MapAndTranslate2m)
{
    FramePool mem;
    PageTable table(mem);
    VirtAddr va = 0x4000000000ULL;
    table.map(va, PageSize::Page2M, 0x80000000ULL);
    Translation xlate = table.translate(va + 0x123456);
    ASSERT_TRUE(xlate.valid);
    EXPECT_EQ(xlate.physAddr, 0x80123456ULL);
    EXPECT_EQ(xlate.pageSize, PageSize::Page2M);
    EXPECT_EQ(xlate.depth, 3u);
}

TEST(PageTable, MapAndTranslate1g)
{
    FramePool mem;
    PageTable table(mem);
    VirtAddr va = 0x4000000000ULL;
    table.map(va, PageSize::Page1G, 0x40000000ULL);
    Translation xlate = table.translate(va + 0x3fffffffULL);
    ASSERT_TRUE(xlate.valid);
    EXPECT_EQ(xlate.physAddr, 0x40000000ULL + 0x3fffffffULL);
    EXPECT_EQ(xlate.depth, 2u);
}

TEST(PageTable, UnmappedIsInvalid)
{
    FramePool mem;
    PageTable table(mem);
    Translation xlate = table.translate(0x1234000);
    EXPECT_FALSE(xlate.valid);
}

TEST(PageTable, EntryChainAddressesAreDistinctAndInPtRegion)
{
    FramePool mem;
    PageTable table(mem);
    VirtAddr va = 0x4000000000ULL;
    table.map(va, PageSize::Page4K, 0x80000000ULL);
    Translation xlate = table.translate(va);
    ASSERT_EQ(xlate.depth, 4u);
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_LT(xlate.entryAddrs[i],
                  FramePool::pageTableBase + FramePool::pageTableRegion);
        for (unsigned j = i + 1; j < 4; ++j)
            EXPECT_NE(xlate.entryAddrs[i], xlate.entryAddrs[j]);
    }
}

TEST(PageTable, SiblingPagesShareUpperNodes)
{
    FramePool mem;
    PageTable table(mem);
    VirtAddr va = 0x4000000000ULL;
    table.map(va, PageSize::Page4K, 0x80000000ULL);
    std::size_t nodes_after_first = table.numNodes();
    table.map(va + 4_KiB, PageSize::Page4K, 0x80001000ULL);
    // Same PT leaf node: no new nodes needed.
    EXPECT_EQ(table.numNodes(), nodes_after_first);
    // Entry chains share the first three levels.
    Translation x1 = table.translate(va);
    Translation x2 = table.translate(va + 4_KiB);
    EXPECT_EQ(x1.entryAddrs[0], x2.entryAddrs[0]);
    EXPECT_EQ(x1.entryAddrs[2], x2.entryAddrs[2]);
    EXPECT_NE(x1.entryAddrs[3], x2.entryAddrs[3]);
}

TEST(PageTable, RejectsDoubleAndMisalignedMaps)
{
    FramePool mem;
    PageTable table(mem);
    VirtAddr va = 0x4000000000ULL;
    table.map(va, PageSize::Page4K, 0x80000000ULL);
    EXPECT_THROW(table.map(va, PageSize::Page4K, 0x80002000ULL),
                 std::logic_error);
    EXPECT_THROW(table.map(0x123, PageSize::Page4K, 0x80000000ULL),
                 std::logic_error);
    EXPECT_THROW(table.map(va + 8_MiB, PageSize::Page2M, 0x1000ULL),
                 std::logic_error);
}

TEST(PageTable, PopulateFromMosalloc)
{
    alloc::MosallocConfig config;
    config.heapLayout = alloc::MosaicLayout(
        4_MiB, {alloc::MosaicRegion{2_MiB, 2_MiB, PageSize::Page2M}});
    config.anonLayout = alloc::MosaicLayout(2_MiB);
    config.filePoolSize = 1_MiB;
    alloc::Mosalloc allocator(config);

    FramePool mem;
    PageTable table(mem);
    table.populate(allocator);

    // 2 MiB of 4KB heap pages + 1 x 2MB page.
    auto counts = table.mappedPages();
    EXPECT_EQ(counts[static_cast<std::size_t>(PageSize::Page2M)], 1u);
    EXPECT_EQ(counts[static_cast<std::size_t>(PageSize::Page4K)],
              (2_MiB + 2_MiB + 1_MiB) / 4_KiB);

    // Every pool address translates; page sizes match the layout.
    VirtAddr heap = alloc::PoolAddresses::heapBase;
    EXPECT_TRUE(table.translate(heap).valid);
    EXPECT_EQ(table.translate(heap + 3_MiB).pageSize, PageSize::Page2M);
    EXPECT_EQ(table.translate(heap + 1_MiB).pageSize, PageSize::Page4K);

    // Distinct pages map to distinct frames.
    PhysAddr f1 = table.translate(heap).physAddr;
    PhysAddr f2 = table.translate(heap + 4_KiB).physAddr;
    EXPECT_NE(f1, f2);
}

/**
 * Property test backing the "bit-identical to translate()" promise on
 * PageTable::translateWith: a single cursor dragged through a stream
 * mixing locality runs (prefix reuse), random jumps (full restarts),
 * page-size changes (different leaf depths) and unmapped holes (the
 * cursor must go cold, not corrupt) always yields exactly what a
 * fresh full descent yields — valid bit, physical address, page size,
 * and the per-level entry addresses a walker would read.
 */
TEST(PageTable, CursorDescentMatchesFullTranslateEverywhere)
{
    FramePool mem;
    PageTable table(mem);
    const VirtAddr base = 0x4000000000ULL;
    // A mixed mapping: 512 x 4K pages, 8 x 2M pages, 1 x 1G page,
    // spread so upper-level prefixes are shared sometimes and not
    // others; a hole lives between the 2M run and the 1G page.
    for (std::uint64_t i = 0; i < 512; ++i)
        table.map(base + i * 4_KiB, PageSize::Page4K,
                  0x80000000ULL + i * 4_KiB);
    for (std::uint64_t i = 0; i < 8; ++i)
        table.map(base + 1_GiB + i * 2_MiB, PageSize::Page2M,
                  0xc0000000ULL + i * 2_MiB);
    table.map(base + 4_GiB, PageSize::Page1G, 0x100000000ULL);

    PageTable::DescentCursor cursor;
    std::uint64_t state = 0x9e3779b97f4a7c15ULL;
    auto next = [&state]() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    };
    for (int i = 0; i < 20000; ++i) {
        VirtAddr vaddr;
        switch (next() % 8) {
          case 0: // sequential run inside the 4K region
            vaddr = base + (static_cast<std::uint64_t>(i) % 512) * 4_KiB;
            break;
          case 1: // random 4K page
            vaddr = base + (next() % 512) * 4_KiB + (next() % 4096);
            break;
          case 2: // 2M region
            vaddr = base + 1_GiB + (next() % (8 * 2_MiB));
            break;
          case 3: // 1G page
            vaddr = base + 4_GiB + (next() % 1_GiB);
            break;
          case 4: // unmapped hole past the 4K run
            vaddr = base + 2_MiB + (next() % 2_MiB);
            break;
          default: // repeat the previous granule (max prefix reuse)
            vaddr = cursor.lastVaddr + (next() % 4096);
        }
        Translation full = table.translate(vaddr);
        Translation cursored = table.translateWith(cursor, vaddr);
        ASSERT_EQ(cursored.valid, full.valid) << "access " << i;
        if (!full.valid)
            continue;
        ASSERT_EQ(cursored.physAddr, full.physAddr) << "access " << i;
        ASSERT_EQ(cursored.pageSize, full.pageSize) << "access " << i;
        ASSERT_EQ(cursored.depth, full.depth) << "access " << i;
        for (unsigned l = 0; l < full.depth; ++l)
            ASSERT_EQ(cursored.entryAddrs[l], full.entryAddrs[l])
                << "access " << i << " level " << l;
    }
}
