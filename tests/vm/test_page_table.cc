/**
 * @file
 * Tests for physical memory, page-table construction and translation.
 */

#include <gtest/gtest.h>

#include "mosalloc/mosalloc.hh"
#include "vm/page_table.hh"
#include "vm/phys_mem.hh"

using namespace mosaic;
using namespace mosaic::vm;
using alloc::PageSize;

TEST(PhysMem, PageTableNodesAreSequential4k)
{
    PhysMem mem;
    PhysAddr a = mem.allocPageTableNode();
    PhysAddr b = mem.allocPageTableNode();
    EXPECT_EQ(b - a, 4_KiB);
    EXPECT_EQ(mem.numPageTableNodes(), 2u);
}

TEST(PhysMem, DataFramesNaturallyAligned)
{
    PhysMem mem;
    PhysAddr small = mem.allocDataFrame(PageSize::Page4K);
    PhysAddr huge = mem.allocDataFrame(PageSize::Page2M);
    PhysAddr giant = mem.allocDataFrame(PageSize::Page1G);
    EXPECT_EQ(small % 4_KiB, 0u);
    EXPECT_EQ(huge % 2_MiB, 0u);
    EXPECT_EQ(giant % 1_GiB, 0u);
    EXPECT_GE(huge, PhysMem::dataBase);
}

TEST(LevelHelpers, ShiftsAndIndices)
{
    EXPECT_EQ(levelShift(PtLevel::Pml4), 39u);
    EXPECT_EQ(levelShift(PtLevel::Pt), 12u);
    VirtAddr va = (3ULL << 39) | (5ULL << 30) | (7ULL << 21) | (9ULL << 12);
    EXPECT_EQ(levelIndex(va, PtLevel::Pml4), 3u);
    EXPECT_EQ(levelIndex(va, PtLevel::Pdpt), 5u);
    EXPECT_EQ(levelIndex(va, PtLevel::Pd), 7u);
    EXPECT_EQ(levelIndex(va, PtLevel::Pt), 9u);
}

TEST(LevelHelpers, LeafLevels)
{
    EXPECT_EQ(leafLevel(PageSize::Page4K), PtLevel::Pt);
    EXPECT_EQ(leafLevel(PageSize::Page2M), PtLevel::Pd);
    EXPECT_EQ(leafLevel(PageSize::Page1G), PtLevel::Pdpt);
}

TEST(PageTable, MapAndTranslate4k)
{
    PhysMem mem;
    PageTable table(mem);
    VirtAddr va = 0x4000000000ULL;
    table.map(va, PageSize::Page4K, 0x80000000ULL);

    Translation xlate = table.translate(va + 0x123);
    ASSERT_TRUE(xlate.valid);
    EXPECT_EQ(xlate.physAddr, 0x80000123ULL);
    EXPECT_EQ(xlate.pageSize, PageSize::Page4K);
    EXPECT_EQ(xlate.depth, 4u);
}

TEST(PageTable, MapAndTranslate2m)
{
    PhysMem mem;
    PageTable table(mem);
    VirtAddr va = 0x4000000000ULL;
    table.map(va, PageSize::Page2M, 0x80000000ULL);
    Translation xlate = table.translate(va + 0x123456);
    ASSERT_TRUE(xlate.valid);
    EXPECT_EQ(xlate.physAddr, 0x80123456ULL);
    EXPECT_EQ(xlate.pageSize, PageSize::Page2M);
    EXPECT_EQ(xlate.depth, 3u);
}

TEST(PageTable, MapAndTranslate1g)
{
    PhysMem mem;
    PageTable table(mem);
    VirtAddr va = 0x4000000000ULL;
    table.map(va, PageSize::Page1G, 0x40000000ULL);
    Translation xlate = table.translate(va + 0x3fffffffULL);
    ASSERT_TRUE(xlate.valid);
    EXPECT_EQ(xlate.physAddr, 0x40000000ULL + 0x3fffffffULL);
    EXPECT_EQ(xlate.depth, 2u);
}

TEST(PageTable, UnmappedIsInvalid)
{
    PhysMem mem;
    PageTable table(mem);
    Translation xlate = table.translate(0x1234000);
    EXPECT_FALSE(xlate.valid);
}

TEST(PageTable, EntryChainAddressesAreDistinctAndInPtRegion)
{
    PhysMem mem;
    PageTable table(mem);
    VirtAddr va = 0x4000000000ULL;
    table.map(va, PageSize::Page4K, 0x80000000ULL);
    Translation xlate = table.translate(va);
    ASSERT_EQ(xlate.depth, 4u);
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_LT(xlate.entryAddrs[i],
                  PhysMem::pageTableBase + PhysMem::pageTableRegion);
        for (unsigned j = i + 1; j < 4; ++j)
            EXPECT_NE(xlate.entryAddrs[i], xlate.entryAddrs[j]);
    }
}

TEST(PageTable, SiblingPagesShareUpperNodes)
{
    PhysMem mem;
    PageTable table(mem);
    VirtAddr va = 0x4000000000ULL;
    table.map(va, PageSize::Page4K, 0x80000000ULL);
    std::size_t nodes_after_first = table.numNodes();
    table.map(va + 4_KiB, PageSize::Page4K, 0x80001000ULL);
    // Same PT leaf node: no new nodes needed.
    EXPECT_EQ(table.numNodes(), nodes_after_first);
    // Entry chains share the first three levels.
    Translation x1 = table.translate(va);
    Translation x2 = table.translate(va + 4_KiB);
    EXPECT_EQ(x1.entryAddrs[0], x2.entryAddrs[0]);
    EXPECT_EQ(x1.entryAddrs[2], x2.entryAddrs[2]);
    EXPECT_NE(x1.entryAddrs[3], x2.entryAddrs[3]);
}

TEST(PageTable, RejectsDoubleAndMisalignedMaps)
{
    PhysMem mem;
    PageTable table(mem);
    VirtAddr va = 0x4000000000ULL;
    table.map(va, PageSize::Page4K, 0x80000000ULL);
    EXPECT_THROW(table.map(va, PageSize::Page4K, 0x80002000ULL),
                 std::logic_error);
    EXPECT_THROW(table.map(0x123, PageSize::Page4K, 0x80000000ULL),
                 std::logic_error);
    EXPECT_THROW(table.map(va + 8_MiB, PageSize::Page2M, 0x1000ULL),
                 std::logic_error);
}

TEST(PageTable, PopulateFromMosalloc)
{
    alloc::MosallocConfig config;
    config.heapLayout = alloc::MosaicLayout(
        4_MiB, {alloc::MosaicRegion{2_MiB, 2_MiB, PageSize::Page2M}});
    config.anonLayout = alloc::MosaicLayout(2_MiB);
    config.filePoolSize = 1_MiB;
    alloc::Mosalloc allocator(config);

    PhysMem mem;
    PageTable table(mem);
    table.populate(allocator);

    // 2 MiB of 4KB heap pages + 1 x 2MB page.
    auto counts = table.mappedPages();
    EXPECT_EQ(counts[static_cast<std::size_t>(PageSize::Page2M)], 1u);
    EXPECT_EQ(counts[static_cast<std::size_t>(PageSize::Page4K)],
              (2_MiB + 2_MiB + 1_MiB) / 4_KiB);

    // Every pool address translates; page sizes match the layout.
    VirtAddr heap = alloc::PoolAddresses::heapBase;
    EXPECT_TRUE(table.translate(heap).valid);
    EXPECT_EQ(table.translate(heap + 3_MiB).pageSize, PageSize::Page2M);
    EXPECT_EQ(table.translate(heap + 1_MiB).pageSize, PageSize::Page4K);

    // Distinct pages map to distinct frames.
    PhysAddr f1 = table.translate(heap).physAddr;
    PhysAddr f2 = table.translate(heap + 4_KiB).physAddr;
    EXPECT_NE(f1, f2);
}
