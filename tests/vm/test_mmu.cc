/**
 * @file
 * Tests for the MMU facade and its PMU-style H/M/C accounting.
 */

#include <gtest/gtest.h>

#include "memhier/hierarchy.hh"
#include "vm/mmu.hh"

using namespace mosaic;
using namespace mosaic::vm;
using alloc::PageSize;

namespace
{

struct MmuFixture
{
    explicit MmuFixture(unsigned walkers = 1)
        : table(mem), hierarchy(hierConfig())
    {
        MmuConfig config;
        config.numWalkers = walkers;
        mmu = std::make_unique<Mmu>(table, hierarchy, config);
    }

    static mem::HierarchyConfig
    hierConfig()
    {
        mem::HierarchyConfig config;
        config.l1 = {"L1", 4_KiB, 2, 64};
        config.l2 = {"L2", 32_KiB, 4, 64};
        config.l3 = {"L3", 256_KiB, 8, 64};
        return config;
    }

    FramePool mem;
    PageTable table;
    mem::MemoryHierarchy hierarchy;
    std::unique_ptr<Mmu> mmu;
};

constexpr VirtAddr base = 0x4000000000ULL;

} // namespace

TEST(Mmu, FirstAccessWalksThenHits)
{
    MmuFixture fixture;
    fixture.table.map(base, PageSize::Page4K, 0x80000000ULL);

    auto first = fixture.mmu->translate(base + 8, 0);
    EXPECT_EQ(first.outcome, TlbOutcome::Miss);
    EXPECT_GT(first.latency, 0u);
    EXPECT_EQ(first.physAddr, 0x80000008ULL);
    EXPECT_EQ(fixture.mmu->counters().m, 1u);
    EXPECT_GT(fixture.mmu->counters().c, 0u);

    auto second = fixture.mmu->translate(base + 16, 100000);
    EXPECT_EQ(second.outcome, TlbOutcome::L1Hit);
    EXPECT_EQ(second.latency, 0u);
    EXPECT_EQ(second.physAddr, 0x80000010ULL);
}

TEST(Mmu, L2HitCostsSevenCycles)
{
    MmuFixture fixture;
    // Map enough pages to overflow the 64-entry L1 but not the L2.
    for (std::uint64_t i = 0; i < 256; ++i)
        fixture.table.map(base + i * 4_KiB, PageSize::Page4K,
                          0x80000000ULL + i * 4_KiB);
    for (std::uint64_t i = 0; i < 256; ++i)
        fixture.mmu->translate(base + i * 4_KiB, i * 1000);

    auto result = fixture.mmu->translate(base, 10000000);
    EXPECT_EQ(result.outcome, TlbOutcome::L2Hit);
    EXPECT_EQ(result.latency, 7u);
    EXPECT_EQ(fixture.mmu->counters().h, 1u);
}

TEST(Mmu, CountersSumToAccesses)
{
    MmuFixture fixture;
    for (std::uint64_t i = 0; i < 512; ++i)
        fixture.table.map(base + i * 4_KiB, PageSize::Page4K,
                          0x80000000ULL + i * 4_KiB);
    const std::uint64_t n = 5000;
    for (std::uint64_t i = 0; i < n; ++i)
        fixture.mmu->translate(base + (i % 512) * 4_KiB, i * 10);
    const auto &counters = fixture.mmu->counters();
    EXPECT_EQ(counters.l1Hits + counters.h + counters.m, n);
}

TEST(Mmu, UnmappedAccessPanics)
{
    MmuFixture fixture;
    EXPECT_THROW(fixture.mmu->translate(0x123456000ULL, 0),
                 std::logic_error);
}

TEST(Mmu, FlushForgetsTranslations)
{
    MmuFixture fixture;
    fixture.table.map(base, PageSize::Page4K, 0x80000000ULL);
    fixture.mmu->translate(base, 0);
    fixture.mmu->flush();
    auto result = fixture.mmu->translate(base, 100000);
    EXPECT_EQ(result.outcome, TlbOutcome::Miss);
    EXPECT_EQ(fixture.mmu->counters().m, 2u);
}

TEST(Mmu, StagedAndFullTranslationsAgreeWhenInterleaved)
{
    // Regression test for the staged-translation memo aliasing hazard:
    // the replay kernel stages peekTranslate() results a chunk ahead of
    // the retire loop, so a staged {physAddr, pageSize} can be consumed
    // at a different `now` — and, in the fused engine, interleaved with
    // other lanes' full translate() calls that advance time at
    // different rates and recycle the same memo slots. Two MMUs over
    // one page table replay the same access stream, one through
    // translate(), one through peek-then-translateStaged with a
    // deliberately stale staging distance and a second stream hammering
    // aliasing granules in between; every event and every counter must
    // be bit-identical.
    MmuFixture plain, staged;
    // Map both fixtures' tables identically: mixed 4K/2M pages so the
    // staged path carries both page sizes.
    auto mapBoth = [&](VirtAddr vaddr, PageSize size, PhysAddr paddr) {
        plain.table.map(vaddr, size, paddr);
        staged.table.map(vaddr, size, paddr);
    };
    for (std::uint64_t i = 0; i < 128; ++i)
        mapBoth(base + i * 4_KiB, PageSize::Page4K,
                0x80000000ULL + i * 4_KiB);
    mapBoth(base + 1_GiB, PageSize::Page2M, 0xc0000000ULL);

    // Access stream: strides that wrap the 128-page window (TLB
    // evictions), repeated granules (memo hits), and the 2M page
    // (different size class through the same staged plumbing).
    std::vector<VirtAddr> stream;
    for (std::uint64_t i = 0; i < 4000; ++i) {
        switch (i % 5) {
          case 0:
            stream.push_back(base + (i * 7 % 128) * 4_KiB + (i % 4096));
            break;
          case 1:
            stream.push_back(base + (i % 128) * 4_KiB);
            break;
          case 2:
            stream.push_back(base + 1_GiB + (i * 64 % 2_MiB));
            break;
          default:
            stream.push_back(base + (i * 31 % 128) * 4_KiB);
        }
    }

    constexpr std::size_t kStageAhead = 16;
    std::vector<Mmu::StagedXlate> pending(kStageAhead);
    for (std::size_t i = 0; i < stream.size(); ++i) {
        // Stage kStageAhead addresses in a burst, as the kernel does,
        // then retire them one by one at later timestamps.
        if (i % kStageAhead == 0) {
            for (std::size_t j = i;
                 j < std::min(i + kStageAhead, stream.size()); ++j)
                pending[j - i] = staged.mmu->peekTranslate(stream[j]);
        }
        Cycles now = static_cast<Cycles>(i * 37);
        auto full = plain.mmu->translate(stream[i], now);
        const Mmu::StagedXlate &stage = pending[i % kStageAhead];
        auto lazy = staged.mmu->translateStaged(
            stream[i], stage.physAddr, stage.pageSize, now);
        ASSERT_EQ(full.physAddr, lazy.physAddr) << "at access " << i;
        ASSERT_EQ(full.outcome, lazy.outcome) << "at access " << i;
        ASSERT_EQ(full.latency, lazy.latency) << "at access " << i;
        ASSERT_EQ(full.pageSize, lazy.pageSize) << "at access " << i;
    }
    EXPECT_EQ(plain.mmu->counters().l1Hits,
              staged.mmu->counters().l1Hits);
    EXPECT_EQ(plain.mmu->counters().h, staged.mmu->counters().h);
    EXPECT_EQ(plain.mmu->counters().m, staged.mmu->counters().m);
    EXPECT_EQ(plain.mmu->counters().c, staged.mmu->counters().c);
}

TEST(Mmu, WalkCyclesAccumulateAcrossWalkers)
{
    // With 2 walkers and back-to-back misses, C grows by the full walk
    // latency of each walk even though they overlap in time.
    MmuFixture fixture(2);
    fixture.table.map(base, PageSize::Page4K, 0x80000000ULL);
    fixture.table.map(base + 1_GiB, PageSize::Page4K, 0x80002000ULL);
    auto e1 = fixture.mmu->translate(base, 0);
    auto e2 = fixture.mmu->translate(base + 1_GiB, 0);
    EXPECT_EQ(e2.queueCycles, 0u);
    EXPECT_EQ(fixture.mmu->counters().c, e1.latency + e2.latency);
}
