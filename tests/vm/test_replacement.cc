/**
 * @file
 * Replacement-policy tests: parsing, hand-written victim sequences for
 * each policy's tie-breaking contract, and per-access equivalence
 * sweeps against naive reference oracles (the same technique as the
 * ReferenceLruCache sweeps in tests/memhier/test_cache_properties.cc —
 * the production policies use intrusive lists and a persistent clock
 * hand, the oracles use plain std containers, and they must agree on
 * every single victim).
 */

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <memory>

#include "support/random.hh"
#include "vm/replacement.hh"

using namespace mosaic;
using namespace mosaic::vm;

// ---------------------------------------------------------------------
// Parsing / naming
// ---------------------------------------------------------------------

TEST(ReplacementParse, AcceptsAllThreePolicies)
{
    auto fifo = parseReplacementPolicy("fifo");
    ASSERT_TRUE(fifo.ok());
    EXPECT_EQ(fifo.value(), ReplacementPolicyKind::Fifo);
    auto lru = parseReplacementPolicy("lru");
    ASSERT_TRUE(lru.ok());
    EXPECT_EQ(lru.value(), ReplacementPolicyKind::Lru);
    auto clock = parseReplacementPolicy("clock");
    ASSERT_TRUE(clock.ok());
    EXPECT_EQ(clock.value(), ReplacementPolicyKind::Clock);
}

TEST(ReplacementParse, RejectsUnknownAndCaseVariants)
{
    for (const char *bad : {"", "FIFO", "Lru", "random", "lru ", "mru"}) {
        auto result = parseReplacementPolicy(bad);
        ASSERT_FALSE(result.ok()) << "accepted '" << bad << "'";
        EXPECT_EQ(result.error().category(), ErrorCategory::Config);
    }
}

TEST(ReplacementParse, NamesRoundTrip)
{
    for (auto kind : {ReplacementPolicyKind::Fifo,
                      ReplacementPolicyKind::Lru,
                      ReplacementPolicyKind::Clock}) {
        auto parsed = parseReplacementPolicy(replacementPolicyName(kind));
        ASSERT_TRUE(parsed.ok());
        EXPECT_EQ(parsed.value(), kind);
        EXPECT_EQ(makeReplacementPolicy(kind)->kind(), kind);
    }
}

// ---------------------------------------------------------------------
// Hand-written tie-break sequences (the documented contract)
// ---------------------------------------------------------------------

TEST(FifoPolicyTest, EvictsInInsertionOrderIgnoringTouches)
{
    auto policy = makeReplacementPolicy(ReplacementPolicyKind::Fifo);
    policy->insert(10);
    policy->insert(20);
    policy->insert(30);
    policy->touch(10); // FIFO: touch is a no-op
    policy->touch(10);
    EXPECT_EQ(policy->size(), 3u);
    EXPECT_EQ(policy->victim(), 10u);
    EXPECT_EQ(policy->victim(), 20u);
    EXPECT_EQ(policy->victim(), 30u);
    EXPECT_EQ(policy->size(), 0u);
}

TEST(LruPolicyTest, TouchRefreshesRecency)
{
    auto policy = makeReplacementPolicy(ReplacementPolicyKind::Lru);
    policy->insert(1);
    policy->insert(2);
    policy->insert(3);
    policy->touch(1); // order is now 2, 3, 1
    EXPECT_EQ(policy->victim(), 2u);
    EXPECT_EQ(policy->victim(), 3u);
    EXPECT_EQ(policy->victim(), 1u);
}

TEST(ClockPolicyTest, FirstVictimIsOldestAfterOneClearingLap)
{
    auto policy = makeReplacementPolicy(ReplacementPolicyKind::Clock);
    policy->insert(1);
    policy->insert(2);
    policy->insert(3);
    // All reference bits are set on insert: the hand clears 1, 2, 3,
    // wraps, and evicts 1 (now clear).
    EXPECT_EQ(policy->victim(), 1u);
    // The hand rests on 2; its bit was cleared during the lap, so a
    // touch buys it exactly one more pass.
    policy->touch(2);
    EXPECT_EQ(policy->victim(), 3u);
    EXPECT_EQ(policy->victim(), 2u);
}

TEST(ClockPolicyTest, HandSurvivesInsertions)
{
    auto policy = makeReplacementPolicy(ReplacementPolicyKind::Clock);
    policy->insert(1);
    policy->insert(2);
    EXPECT_EQ(policy->victim(), 1u); // hand now rests on 2
    policy->insert(3);               // appended behind the hand
    // 2's bit was cleared by the first lap; 3's is set on insert.
    EXPECT_EQ(policy->victim(), 2u);
    EXPECT_EQ(policy->victim(), 3u);
    EXPECT_EQ(policy->size(), 0u);
}

TEST(PolicyCommon, ReinsertAfterEvictionIsFresh)
{
    for (auto kind : {ReplacementPolicyKind::Fifo,
                      ReplacementPolicyKind::Lru,
                      ReplacementPolicyKind::Clock}) {
        auto policy = makeReplacementPolicy(kind);
        policy->insert(7);
        EXPECT_EQ(policy->victim(), 7u);
        policy->insert(7); // legal again after eviction
        policy->insert(8);
        EXPECT_EQ(policy->size(), 2u);
        EXPECT_EQ(policy->victim(), 7u)
            << replacementPolicyName(kind);
    }
}

TEST(PolicyCommon, SparseIdsAutoGrow)
{
    auto policy = makeReplacementPolicy(ReplacementPolicyKind::Lru);
    policy->insert(100000);
    policy->insert(3);
    policy->touch(100000);
    EXPECT_EQ(policy->victim(), 3u);
    EXPECT_EQ(policy->victim(), 100000u);
}

// ---------------------------------------------------------------------
// Reference oracles: obviously-correct std-container versions of the
// same specs, used to pin the production policies per access.
// ---------------------------------------------------------------------

namespace
{

class ReferencePolicy
{
  public:
    virtual ~ReferencePolicy() = default;
    virtual void insert(std::uint32_t id) = 0;
    virtual void touch(std::uint32_t id) = 0;
    virtual std::uint32_t victim() = 0;
};

class ReferenceFifo : public ReferencePolicy
{
  public:
    void insert(std::uint32_t id) override { order_.push_back(id); }
    void touch(std::uint32_t) override {}

    std::uint32_t
    victim() override
    {
        std::uint32_t id = order_.front();
        order_.pop_front();
        return id;
    }

  private:
    std::list<std::uint32_t> order_;
};

class ReferenceLru : public ReferencePolicy
{
  public:
    void insert(std::uint32_t id) override { order_.push_back(id); }

    void
    touch(std::uint32_t id) override
    {
        order_.remove(id);
        order_.push_back(id);
    }

    std::uint32_t
    victim() override
    {
        std::uint32_t id = order_.front();
        order_.pop_front();
        return id;
    }

  private:
    std::list<std::uint32_t> order_;
};

/** Second-chance clock per the header spec: circular insertion-order
 *  list, reference bit set on insert and touch, hand persists across
 *  victim() calls and rests on the victim's successor. */
class ReferenceClock : public ReferencePolicy
{
  public:
    void
    insert(std::uint32_t id) override
    {
        order_.push_back(id);
        ref_[id] = true;
    }

    void touch(std::uint32_t id) override { ref_[id] = true; }

    std::uint32_t
    victim() override
    {
        auto hand = order_.begin();
        if (handValid_) {
            for (auto it = order_.begin(); it != order_.end(); ++it) {
                if (*it == hand_) {
                    hand = it;
                    break;
                }
            }
        }
        while (ref_[*hand]) {
            ref_[*hand] = false;
            hand = advance(hand);
        }
        std::uint32_t id = *hand;
        auto next = advance(hand);
        handValid_ = *next != id;
        hand_ = *next;
        order_.erase(hand);
        ref_.erase(id);
        return id;
    }

  private:
    std::list<std::uint32_t>::iterator
    advance(std::list<std::uint32_t>::iterator it)
    {
        ++it;
        return it == order_.end() ? order_.begin() : it;
    }

    std::list<std::uint32_t> order_;
    std::map<std::uint32_t, bool> ref_;
    std::uint32_t hand_ = 0;
    bool handValid_ = false;
};

std::unique_ptr<ReferencePolicy>
makeReference(ReplacementPolicyKind kind)
{
    switch (kind) {
      case ReplacementPolicyKind::Fifo:
        return std::make_unique<ReferenceFifo>();
      case ReplacementPolicyKind::Lru:
        return std::make_unique<ReferenceLru>();
      case ReplacementPolicyKind::Clock:
        return std::make_unique<ReferenceClock>();
    }
    return nullptr;
}

/**
 * Drive both implementations through the same simulated bounded pool:
 * hit → touch both, miss at capacity → both pick a victim (which must
 * match), then both insert. Returns the number of evictions compared.
 */
std::size_t
sweepAgainstOracle(ReplacementPolicyKind kind, std::size_t capacity,
                   std::uint64_t seed)
{
    auto policy = makeReplacementPolicy(kind);
    auto oracle = makeReference(kind);
    std::map<std::uint32_t, bool> resident;

    Rng rng(seed);
    const std::uint32_t universe = static_cast<std::uint32_t>(
        capacity * 4 + 8);
    const std::uint32_t hot = static_cast<std::uint32_t>(
        capacity / 2 + 1);
    std::size_t evictions = 0;
    std::uint32_t stride_next = 0;

    for (int access = 0; access < 30000; ++access) {
        // Mixed traffic, as in the cache property sweeps: mostly a hot
        // subset (re-touches), some uniform evict traffic, and a
        // strided sweep that cycles the whole universe.
        std::uint32_t id;
        const std::uint64_t dice = rng.next() % 10;
        if (dice < 5)
            id = static_cast<std::uint32_t>(rng.next() % hot);
        else if (dice < 8)
            id = static_cast<std::uint32_t>(rng.next() % universe);
        else
            id = stride_next++ % universe;

        auto it = resident.find(id);
        if (it != resident.end()) {
            policy->touch(id);
            oracle->touch(id);
            continue;
        }
        if (resident.size() == capacity) {
            const std::uint32_t got = policy->victim();
            const std::uint32_t want = oracle->victim();
            EXPECT_EQ(got, want)
                << replacementPolicyName(kind) << " diverged at access "
                << access << " (capacity " << capacity << ")";
            if (got != want)
                return evictions; // state already diverged; stop early
            EXPECT_EQ(resident.erase(got), 1u);
            ++evictions;
        }
        policy->insert(id);
        oracle->insert(id);
        resident[id] = true;
        EXPECT_EQ(policy->size(), resident.size());
    }
    return evictions;
}

} // namespace

class PolicyOracleTest
    : public ::testing::TestWithParam<ReplacementPolicyKind>
{
};

TEST_P(PolicyOracleTest, MatchesOraclePerAccessAcrossCapacities)
{
    for (std::size_t capacity : {1u, 2u, 8u, 64u}) {
        std::size_t evictions = sweepAgainstOracle(
            GetParam(), capacity, 0x5eedULL + capacity);
        if (::testing::Test::HasFailure())
            return;
        // The sweep must actually exercise replacement, not just fill.
        EXPECT_GT(evictions, 100u) << "capacity " << capacity;
    }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyOracleTest,
                         ::testing::Values(ReplacementPolicyKind::Fifo,
                                           ReplacementPolicyKind::Lru,
                                           ReplacementPolicyKind::Clock),
                         [](const auto &info) {
                             return std::string(
                                 replacementPolicyName(info.param));
                         });
