/**
 * @file
 * FramePool tests: the unbounded bump allocator contract (address
 * identity with the pre-refactor PhysMem), exhaustion as structured
 * ResourceErrors, and the bounded demand-paging mode — fault/eviction
 * accounting, shootdown ordering, dirty writeback, LIFO frame reuse,
 * and cross-tenant contention.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mosalloc/mosalloc.hh"
#include "support/error.hh"
#include "vm/frame_pool.hh"
#include "vm/page_table.hh"

using namespace mosaic;
using namespace mosaic::vm;
using alloc::MosaicLayout;
using alloc::MosaicRegion;
using alloc::Mosalloc;
using alloc::MosallocConfig;
using alloc::PageSize;
using alloc::PoolAddresses;

namespace
{

/** A tiny pool mix: 256 heap pages, 256 anon pages, 16 file pages. */
MosallocConfig
tinyConfig()
{
    MosallocConfig config;
    config.heapLayout = MosaicLayout(1_MiB);
    config.anonLayout = MosaicLayout(1_MiB);
    config.filePoolSize = 64_KiB;
    return config;
}

struct RecordingSink : ShootdownSink
{
    std::vector<std::pair<VirtAddr, PageSize>> events;

    void
    shootdown(VirtAddr vbase, PageSize size) override
    {
        events.emplace_back(vbase, size);
    }
};

OsConfig
boundedConfig(std::uint64_t frames,
              ReplacementPolicyKind policy = ReplacementPolicyKind::Fifo)
{
    OsConfig os;
    os.memFrames = frames;
    os.policy = policy;
    os.majorFaultCycles = 2000;
    os.writebackCycles = 800;
    return os;
}

/** One registered address space over @p pool for the tiny config. */
struct TestTenant
{
    explicit TestTenant(FramePool &pool)
        : allocator(tinyConfig()), table(pool),
          id(pool.registerTenant(table, sink))
    {
        pool.addTenantPages(id, allocator);
    }

    Mosalloc allocator;
    PageTable table;
    RecordingSink sink;
    FramePool::TenantId id;
};

} // namespace

// ---------------------------------------------------------------------
// Unbounded mode (the safety rail: exactly the old bump allocator)
// ---------------------------------------------------------------------

TEST(FramePoolUnbounded, ConfiguredUnboundedMatchesDefaultPool)
{
    FramePool legacy;                  // pre-refactor default ctor
    FramePool configured(OsConfig{});  // memFrames == 0
    EXPECT_FALSE(configured.paged());
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(legacy.allocPageTableNode(),
                  configured.allocPageTableNode());
    }
    for (auto size : {PageSize::Page4K, PageSize::Page2M,
                      PageSize::Page4K, PageSize::Page1G,
                      PageSize::Page2M}) {
        EXPECT_EQ(legacy.allocDataFrame(size),
                  configured.allocDataFrame(size));
    }
    EXPECT_EQ(legacy.dataBytesAllocated(),
              configured.dataBytesAllocated());
}

TEST(FramePoolUnbounded, PageTableRegionExhaustionIsResourceError)
{
    FramePool pool;
    const std::uint64_t capacity = FramePool::pageTableRegion / 4_KiB;
    for (std::uint64_t i = 0; i < capacity; ++i)
        pool.allocPageTableNode();
    EXPECT_THROW(pool.allocPageTableNode(), ResourceError);
    EXPECT_EQ(pool.numPageTableNodes(), capacity);
}

TEST(FramePoolUnbounded, PhysicalExhaustionIsResourceError)
{
    FramePool pool;
    // 1GiB frames against the 1TiB ceiling: the first GiB is the
    // page-table region, leaving 1023 data frames.
    for (int i = 0; i < 1023; ++i)
        pool.allocDataFrame(PageSize::Page1G);
    EXPECT_THROW(pool.allocDataFrame(PageSize::Page1G), ResourceError);
    EXPECT_THROW(pool.allocDataFrame(PageSize::Page4K), ResourceError);
}

// ---------------------------------------------------------------------
// Bounded mode: fault accounting and eviction mechanics
// ---------------------------------------------------------------------

TEST(FramePoolBounded, FirstTouchIsMajorFaultSecondIsFree)
{
    FramePool pool(boundedConfig(16));
    TestTenant tenant(pool);
    const VirtAddr heap = PoolAddresses::heapBase;

    auto first = pool.touch(tenant.id, heap + 100, false);
    EXPECT_TRUE(first.majorFault);
    EXPECT_EQ(first.swapCycles, 2000u);
    EXPECT_EQ(first.evictions, 0u);
    EXPECT_EQ(pool.majorFaults(), 1u);
    EXPECT_TRUE(tenant.table.translate(heap + 100).valid);

    // Same page, different offset: resident, zero cost.
    auto second = pool.touch(tenant.id, heap + 200, false);
    EXPECT_FALSE(second.majorFault);
    EXPECT_EQ(second.swapCycles, 0u);
    EXPECT_EQ(pool.majorFaults(), 1u);
    EXPECT_EQ(pool.residentBytes(), 4_KiB);
}

TEST(FramePoolBounded, EvictionUnmapsShootsDownAndRecyclesLifo)
{
    FramePool pool(boundedConfig(2)); // room for two 4KB pages
    TestTenant tenant(pool);
    const VirtAddr heap = PoolAddresses::heapBase;

    pool.touch(tenant.id, heap, false);
    pool.touch(tenant.id, heap + 4_KiB, false);
    const PhysAddr frame_a = tenant.table.translate(heap).physAddr;
    EXPECT_EQ(pool.residentBytes(), 8_KiB);

    // Third page: FIFO evicts the first. Clean page, no writeback.
    auto outcome = pool.touch(tenant.id, heap + 8_KiB, false);
    EXPECT_TRUE(outcome.majorFault);
    EXPECT_EQ(outcome.evictions, 1u);
    EXPECT_EQ(outcome.writebacks, 0u);
    EXPECT_EQ(outcome.swapCycles, 2000u);
    EXPECT_FALSE(tenant.table.translate(heap).valid);
    ASSERT_EQ(tenant.sink.events.size(), 1u);
    EXPECT_EQ(tenant.sink.events[0].first, heap);
    EXPECT_EQ(tenant.sink.events[0].second, PageSize::Page4K);

    // The victim's frame is reused for the newcomer (LIFO free list).
    EXPECT_EQ(tenant.table.translate(heap + 8_KiB).physAddr, frame_a);
    EXPECT_EQ(pool.evictions(), 1u);
    EXPECT_EQ(pool.residentBytes(), 8_KiB);
}

TEST(FramePoolBounded, DirtyEvictionChargesWriteback)
{
    FramePool pool(boundedConfig(1));
    TestTenant tenant(pool);
    const VirtAddr heap = PoolAddresses::heapBase;

    pool.touch(tenant.id, heap, true); // write: marks dirty
    auto outcome = pool.touch(tenant.id, heap + 4_KiB, false);
    EXPECT_EQ(outcome.writebacks, 1u);
    EXPECT_EQ(outcome.swapCycles, 2000u + 800u);
    EXPECT_EQ(pool.writebacks(), 1u);

    // The clean newcomer's eviction charges no writeback.
    outcome = pool.touch(tenant.id, heap, false);
    EXPECT_EQ(outcome.writebacks, 0u);
    EXPECT_EQ(outcome.swapCycles, 2000u);

    // A read-write sequence on a resident page re-dirties it.
    pool.touch(tenant.id, heap + 100, true);
    outcome = pool.touch(tenant.id, heap + 4_KiB, false);
    EXPECT_EQ(outcome.writebacks, 1u);
}

TEST(FramePoolBounded, BudgetTooSmallForOnePageIsResourceError)
{
    // One 4KB frame of budget cannot hold a 2MB page.
    FramePool pool(boundedConfig(1));
    MosallocConfig config = tinyConfig();
    config.heapLayout = MosaicLayout(
        2_MiB, {MosaicRegion{0, 2_MiB, PageSize::Page2M}});
    Mosalloc allocator(config);
    PageTable table(pool);
    RecordingSink sink;
    auto id = pool.registerTenant(table, sink);
    EXPECT_THROW(pool.addTenantPages(id, allocator), ResourceError);
}

TEST(FramePoolBounded, MixedPageSizesEvictUntilRoom)
{
    // Budget of one 2MB page (512 frames). Touch 4KB pages, then a
    // 2MB page: every small page must be evicted to make room.
    FramePool pool(boundedConfig(512));
    MosallocConfig config = tinyConfig();
    config.heapLayout = MosaicLayout(
        4_MiB, {MosaicRegion{2_MiB, 2_MiB, PageSize::Page2M}});
    Mosalloc allocator(config);
    PageTable table(pool);
    RecordingSink sink;
    auto id = pool.registerTenant(table, sink);
    pool.addTenantPages(id, allocator);

    const VirtAddr heap = PoolAddresses::heapBase;
    for (int i = 0; i < 3; ++i)
        pool.touch(id, heap + i * 4_KiB, false);
    EXPECT_EQ(pool.residentBytes(), 12_KiB);

    auto outcome = pool.touch(id, heap + 2_MiB, false);
    EXPECT_EQ(outcome.evictions, 3u);
    EXPECT_EQ(pool.residentBytes(), 2_MiB);
    EXPECT_TRUE(table.translate(heap + 2_MiB).valid);
    EXPECT_FALSE(table.translate(heap).valid);
}

TEST(FramePoolBounded, LruKeepsTouchedPageResident)
{
    FramePool pool(boundedConfig(2, ReplacementPolicyKind::Lru));
    TestTenant tenant(pool);
    const VirtAddr heap = PoolAddresses::heapBase;

    pool.touch(tenant.id, heap, false);
    pool.touch(tenant.id, heap + 4_KiB, false);
    pool.touch(tenant.id, heap, false); // refresh the older page
    pool.touch(tenant.id, heap + 8_KiB, false);
    // LRU evicted page 1, not page 0.
    EXPECT_TRUE(tenant.table.translate(heap).valid);
    EXPECT_FALSE(tenant.table.translate(heap + 4_KiB).valid);
}

// ---------------------------------------------------------------------
// Multi-tenant contention
// ---------------------------------------------------------------------

TEST(FramePoolBounded, EvictionMayVictimizeAnotherTenant)
{
    FramePool pool(boundedConfig(2));
    TestTenant first(pool);
    TestTenant second(pool);
    const VirtAddr heap = PoolAddresses::heapBase;

    pool.touch(first.id, heap, false);
    pool.touch(first.id, heap + 4_KiB, false);

    // The second tenant's fault steals the first tenant's oldest
    // frame; the shootdown must land on the *owner's* sink.
    auto outcome = pool.touch(second.id, heap, false);
    EXPECT_TRUE(outcome.majorFault);
    EXPECT_EQ(outcome.evictions, 1u);
    ASSERT_EQ(first.sink.events.size(), 1u);
    EXPECT_EQ(first.sink.events[0].first, heap);
    EXPECT_TRUE(second.sink.events.empty());
    EXPECT_FALSE(first.table.translate(heap).valid);
    EXPECT_TRUE(second.table.translate(heap).valid);
    EXPECT_TRUE(first.table.translate(heap + 4_KiB).valid);
}

TEST(FramePoolBounded, TenantsHaveIndependentPageTables)
{
    FramePool pool(boundedConfig(8));
    TestTenant first(pool);
    TestTenant second(pool);
    const VirtAddr heap = PoolAddresses::heapBase;

    pool.touch(first.id, heap, false);
    pool.touch(second.id, heap, false);
    // Same virtual page in both spaces, but distinct physical frames.
    const auto t1 = first.table.translate(heap);
    const auto t2 = second.table.translate(heap);
    ASSERT_TRUE(t1.valid);
    ASSERT_TRUE(t2.valid);
    EXPECT_NE(t1.physAddr, t2.physAddr);
    EXPECT_EQ(pool.majorFaults(), 2u);
    EXPECT_EQ(pool.residentBytes(), 8_KiB);
}
