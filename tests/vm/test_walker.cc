/**
 * @file
 * Tests for the page-walk caches and the hardware walker pool,
 * including the two-walker concurrency that lets C exceed R.
 */

#include <gtest/gtest.h>

#include "memhier/hierarchy.hh"
#include "vm/page_table.hh"
#include "vm/frame_pool.hh"
#include "vm/walker.hh"

using namespace mosaic;
using namespace mosaic::vm;
using alloc::PageSize;

namespace
{

struct WalkerFixture
{
    WalkerFixture()
        : table(mem), hierarchy(makeHierarchyConfig())
    {
    }

    static mem::HierarchyConfig
    makeHierarchyConfig()
    {
        mem::HierarchyConfig config;
        config.l1 = {"L1", 4_KiB, 2, 64};
        config.l2 = {"L2", 32_KiB, 4, 64};
        config.l3 = {"L3", 256_KiB, 8, 64};
        return config;
    }

    FramePool mem;
    PageTable table;
    mem::MemoryHierarchy hierarchy;
};

constexpr VirtAddr base = 0x4000000000ULL;

} // namespace

TEST(Walker, ColdWalkReadsFourLevelsFor4k)
{
    WalkerFixture fixture;
    fixture.table.map(base, PageSize::Page4K, 0x80000000ULL);
    PageWalker walker(fixture.table, fixture.hierarchy, PwcConfig{}, 1);

    WalkResult result = walker.walk(base, 0);
    EXPECT_EQ(result.levelsRead, 4u);
    // Four cold reads, all from DRAM.
    EXPECT_EQ(result.walkCycles,
              4 * fixture.hierarchy.config().latencies.dram);
    EXPECT_EQ(result.physAddr, 0x80000000ULL);
}

TEST(Walker, PwcSkipsUpperLevelsOnSecondWalk)
{
    WalkerFixture fixture;
    fixture.table.map(base, PageSize::Page4K, 0x80000000ULL);
    fixture.table.map(base + 4_KiB, PageSize::Page4K, 0x80001000ULL);
    PageWalker walker(fixture.table, fixture.hierarchy, PwcConfig{}, 1);

    walker.walk(base, 0);
    // Second walk in the same 2MB region: PDE cache hit, 1 read only.
    WalkResult second = walker.walk(base + 4_KiB, 0);
    EXPECT_EQ(second.levelsRead, 1u);
    EXPECT_EQ(walker.stats().pwcHits[2], 1u);
}

TEST(Walker, HugePagesWalkFewerLevels)
{
    // Fresh walkers per page size so PWC contents from the first walk
    // cannot shorten the second (the pages share a PML4 entry).
    {
        WalkerFixture fixture;
        fixture.table.map(base, PageSize::Page2M, 0x80000000ULL);
        PageWalker walker(fixture.table, fixture.hierarchy, PwcConfig{},
                          1);
        EXPECT_EQ(walker.walk(base, 0).levelsRead, 3u);
    }
    {
        WalkerFixture fixture;
        fixture.table.map(base + 1_GiB, PageSize::Page1G,
                          0x40000000ULL);
        PageWalker walker(fixture.table, fixture.hierarchy, PwcConfig{},
                          1);
        EXPECT_EQ(walker.walk(base + 1_GiB, 0).levelsRead, 2u);
    }
}

TEST(Walker, SharedPml4EntryShortensSecondWalk)
{
    // Two pages a gigabyte apart share the PML4E: the second walk
    // starts from the cached PML4E and reads one level fewer.
    WalkerFixture fixture;
    fixture.table.map(base, PageSize::Page2M, 0x80000000ULL);
    fixture.table.map(base + 1_GiB, PageSize::Page1G, 0x40000000ULL);
    PageWalker walker(fixture.table, fixture.hierarchy, PwcConfig{}, 1);
    EXPECT_EQ(walker.walk(base, 0).levelsRead, 3u);
    EXPECT_EQ(walker.walk(base + 1_GiB, 0).levelsRead, 1u);
    EXPECT_EQ(walker.stats().pwcHits[0], 1u);
}

TEST(Walker, WalkOfUnmappedAddressPanics)
{
    WalkerFixture fixture;
    PageWalker walker(fixture.table, fixture.hierarchy, PwcConfig{}, 1);
    EXPECT_THROW(walker.walk(0xdead000, 0), std::logic_error);
}

TEST(Walker, SingleWalkerSerializesConcurrentWalks)
{
    WalkerFixture fixture;
    fixture.table.map(base, PageSize::Page4K, 0x80000000ULL);
    fixture.table.map(base + 1_GiB, PageSize::Page4K, 0x80002000ULL);
    PageWalker walker(fixture.table, fixture.hierarchy, PwcConfig{}, 1);

    WalkResult first = walker.walk(base, 0);
    // Second walk issued at time 0 must queue behind the first.
    WalkResult second = walker.walk(base + 1_GiB, 0);
    EXPECT_EQ(second.queueCycles, first.walkCycles);
    EXPECT_EQ(second.completesAt,
              first.walkCycles + second.walkCycles);
}

TEST(Walker, TwoWalkersOverlap)
{
    WalkerFixture fixture;
    fixture.table.map(base, PageSize::Page4K, 0x80000000ULL);
    fixture.table.map(base + 1_GiB, PageSize::Page4K, 0x80002000ULL);
    PageWalker walker(fixture.table, fixture.hierarchy, PwcConfig{}, 2);

    WalkResult first = walker.walk(base, 0);
    WalkResult second = walker.walk(base + 1_GiB, 0);
    EXPECT_EQ(second.queueCycles, 0u);
    // Both busy simultaneously: summed busy cycles exceed the wall
    // clock to completion — the C > R mechanism.
    Cycles wall = std::max(first.completesAt, second.completesAt);
    EXPECT_GT(walker.stats().walkCycles, wall);
}

TEST(Walker, StatsAccumulate)
{
    WalkerFixture fixture;
    fixture.table.map(base, PageSize::Page4K, 0x80000000ULL);
    PageWalker walker(fixture.table, fixture.hierarchy, PwcConfig{}, 1);
    walker.walk(base, 0);
    walker.walk(base, 1000);
    EXPECT_EQ(walker.stats().walks, 2u);
    EXPECT_GT(walker.stats().walkCycles, 0u);
    EXPECT_GT(walker.stats().levelReads, 4u);
}

TEST(Walker, FlushPwcsForcesFullWalk)
{
    WalkerFixture fixture;
    fixture.table.map(base, PageSize::Page4K, 0x80000000ULL);
    PageWalker walker(fixture.table, fixture.hierarchy, PwcConfig{}, 1);
    walker.walk(base, 0);
    walker.flushPwcs();
    WalkResult result = walker.walk(base, 10000);
    EXPECT_EQ(result.levelsRead, 4u);
}

TEST(Walker, WalkReadsPolluteCaches)
{
    WalkerFixture fixture;
    fixture.table.map(base, PageSize::Page4K, 0x80000000ULL);
    PageWalker walker(fixture.table, fixture.hierarchy, PwcConfig{}, 1);
    auto before = fixture.hierarchy.l1().stats().accesses(
        mem::Requester::Walker);
    walker.walk(base, 0);
    auto after = fixture.hierarchy.l1().stats().accesses(
        mem::Requester::Walker);
    EXPECT_EQ(after - before, 4u);
}
