/**
 * @file
 * Example: the Section III model survey, executable.
 *
 * Fits all five preexisting linear models plus the new regression
 * models on one workload and prints each model's fitted equation next
 * to its errors — the quickest way to see *why* two-point models go
 * wrong: their coefficients are hostage to exactly one or two
 * measured layouts.
 *
 * Build & run:  ./build/examples/model_survey
 */

#include <cstdio>

#include "cpu/platform.hh"
#include "experiments/campaign.hh"
#include "models/evaluation.hh"
#include "models/mosmodel.hh"
#include "support/str.hh"
#include "workloads/registry.hh"

int
main()
{
    using namespace mosaic;

    const std::string label = "gups/8GB";
    cpu::PlatformSpec platform = cpu::broadwell();
    auto workload = workloads::makeWorkload(label);
    std::printf("surveying runtime models for %s on %s\n\n",
                label.c_str(), platform.name.c_str());

    exp::CampaignConfig config;
    config.verbose = false;
    exp::Dataset dataset;
    exp::CampaignRunner::runPair(*workload, platform, config, dataset);
    auto data = dataset.sampleSet(platform.name, label);

    std::printf("anchor points the fixed models are built from:\n");
    std::printf("  4KB: R=%.0f H=%.0f M=%.0f C=%.0f\n", data.all4k.r,
                data.all4k.h, data.all4k.m, data.all4k.c);
    std::printf("  2MB: R=%.0f H=%.0f M=%.0f C=%.0f\n\n", data.all2m.r,
                data.all2m.h, data.all2m.m, data.all2m.c);
    if (data.all4k.c > data.all4k.r) {
        std::printf("note: C4K > R4K on this two-walker machine — the "
                    "Basu model's beta = R - C goes negative "
                    "(Section VI-D).\n\n");
    }

    TextTable table;
    table.setHeader({"model", "fitted form", "max err", "geomean"});
    for (auto &model : models::makeAllModels()) {
        auto errors = models::evaluateModel(*model, data);
        std::string form = model->describe();
        if (form.size() > 58)
            form = form.substr(0, 55) + "...";
        table.addRow({errors.model, form,
                      formatPercent(errors.maxError),
                      formatPercent(errors.geoMeanError, 2)});
    }
    std::printf("%s\n", table.render().c_str());

    models::Mosmodel mosmodel;
    mosmodel.fit(data);
    std::printf("mosmodel active terms (%zu of %zu after Lasso):\n  "
                "%s\n",
                mosmodel.numActiveCoefficients(), mosmodel.numFeatures(),
                mosmodel.describe().c_str());
    return 0;
}
