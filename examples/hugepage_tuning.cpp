/**
 * @file
 * Example: hugepage budget tuning with Mosalloc.
 *
 * Section V-B of the paper notes Mosalloc's use beyond research:
 * "high-end users may optimize the performance of their Linux
 * applications by using Mosalloc to back memory regions that suffer
 * from TLB misses with hugepages." Hugepages are a scarce, reserved
 * resource, so the interesting question is: given a budget of N 2MB
 * pages, where should they go?
 *
 * This example profiles a workload's TLB misses (the PEBS substitute),
 * then compares three placements of the same budget — at the pool
 * start, at random, and over the miss hot region — and reports the
 * speedup of each.
 *
 * Build & run:  ./build/examples/hugepage_tuning
 */

#include <cstdio>

#include "cpu/platform.hh"
#include "cpu/system.hh"
#include "layouts/heuristics.hh"
#include "support/str.hh"
#include "trace/miss_profile.hh"
#include "workloads/gapbs.hh"

int
main()
{
    using namespace mosaic;

    // The tuning victim: PageRank over a twitter-like graph.
    workloads::GapbsWorkload workload(workloads::gapbsPrTwitter());
    cpu::PlatformSpec platform = cpu::haswell();
    std::printf("workload: %s on %s\n", workload.info().label().c_str(),
                platform.name.c_str());

    std::printf("generating trace...\n");
    trace::MemoryTrace trace = workload.generateTrace();
    Bytes pool = workload.primaryPoolSize();

    // Profile where the TLB misses land.
    trace::MissProfile profile(trace, workload.primaryPoolBase(), pool);
    auto hot = profile.findHotRegion(0.6);
    std::printf("pool %s; hot region: %s at offset %s covers %s of "
                "misses\n\n",
                formatBytes(pool).c_str(),
                formatBytes(hot.length).c_str(),
                formatBytes(hot.start).c_str(),
                formatPercent(hot.coverage).c_str());

    // Budget: back one eighth of the pool with 2MB pages.
    Bytes budget = alignUp(pool / 8, 2_MiB);
    std::printf("hugepage budget: %s (%llu x 2MB pages)\n\n",
                formatBytes(budget).c_str(),
                static_cast<unsigned long long>(budget / 2_MiB));

    // Baseline: all 4KB.
    auto baseline = cpu::simulateRun(
        platform, workload.makeAllocConfig(alloc::MosaicLayout(pool)),
        trace);

    struct Placement
    {
        std::string name;
        alloc::MosaicLayout layout;
    };
    Rng rng(7);
    Bytes random_start =
        alignDown(rng.nextBounded(pool - budget), 2_MiB);
    std::vector<Placement> placements = {
        {"pool start", alloc::MosaicLayout::withWindow(
                           pool, 0, budget, alloc::PageSize::Page2M)},
        {"random spot", alloc::MosaicLayout::withWindow(
                            pool, random_start, budget,
                            alloc::PageSize::Page2M)},
        {"miss hot region",
         alloc::MosaicLayout::withWindow(pool, hot.start, budget,
                                         alloc::PageSize::Page2M)},
    };

    TextTable table;
    table.setHeader({"placement", "runtime [Mcyc]", "TLB misses",
                     "speedup vs 4KB"});
    table.addRow({"all 4KB (baseline)",
                  formatDouble(baseline.runtimeCycles / 1e6, 2),
                  std::to_string(baseline.tlbMisses), "1.00x"});
    for (const auto &placement : placements) {
        auto result = cpu::simulateRun(
            platform, workload.makeAllocConfig(placement.layout), trace);
        double speedup = static_cast<double>(baseline.runtimeCycles) /
                         static_cast<double>(result.runtimeCycles);
        table.addRow({placement.name,
                      formatDouble(result.runtimeCycles / 1e6, 2),
                      std::to_string(result.tlbMisses),
                      formatDouble(speedup, 2) + "x"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("takeaway: the same hugepage budget buys the most "
                "when spent on the TLB-miss hot region — the insight "
                "behind the sliding-window heuristic.\n");
    return 0;
}
