/**
 * @file
 * Example: evaluating a "new" virtual-memory design with Mosmodel —
 * the Section VII-D workflow, end to end.
 *
 * A computer architect wants to estimate the benefit of a design that
 * (nearly) eliminates address-translation overhead — direct segments,
 * say, or here its measurable stand-in: 1GB pages. The workflow:
 *
 *  1. Measure the workload on the real machine under many 4KB/2MB
 *     Mosalloc mosaics (no 1GB pages involved).
 *  2. Fit Mosmodel to those samples.
 *  3. "Partially simulate" the new design to get its (H, M, C) — here
 *     the 1GB run's virtual-memory counters play that role.
 *  4. Predict the runtime, and since 1GB pages exist in hardware,
 *     compare the prediction against the measured truth.
 *
 * Build & run:  ./build/examples/design_eval_1gb
 */

#include <cstdio>

#include "cpu/platform.hh"
#include "experiments/campaign.hh"
#include "experiments/report.hh"
#include "models/mosmodel.hh"
#include "support/str.hh"
#include "workloads/registry.hh"

int
main()
{
    using namespace mosaic;

    const std::string label = "spec06/mcf";
    cpu::PlatformSpec platform = cpu::sandyBridge();
    auto workload = workloads::makeWorkload(label);
    std::printf("design under evaluation: translation-free backing "
                "(1GB pages as the stand-in)\n");
    std::printf("workload %s, platform %s\n\n", label.c_str(),
                platform.name.c_str());

    // Steps 1 and 3: the measurement campaign (54 mosaics + the 1GB
    // ground-truth run).
    exp::CampaignConfig config;
    config.verbose = false;
    exp::Dataset dataset;
    exp::CampaignRunner::runPair(*workload, platform, config, dataset);
    auto data = dataset.sampleSet(platform.name, label);

    // Step 2: fit the models on the 4KB/2MB samples only.
    models::Mosmodel mosmodel;
    mosmodel.fit(data);
    auto yaniv = exp::makeModelByName("yaniv");
    yaniv->fit(data);

    // Step 4: predict from the design's virtual-memory metrics.
    const models::Sample &design = data.all1g;
    double mos_prediction = mosmodel.predict(design);
    double yaniv_prediction = yaniv->predict(design);

    std::printf("design's partial-simulation outputs: H=%.0f M=%.0f "
                "C=%.0f\n\n",
                design.h, design.m, design.c);
    TextTable table;
    table.setHeader({"quantity", "cycles", "error"});
    table.addRow({"measured runtime (ground truth)",
                  formatDouble(design.r / 1e6, 2) + "M", "-"});
    table.addRow({"mosmodel prediction",
                  formatDouble(mos_prediction / 1e6, 2) + "M",
                  formatPercent(std::abs(mos_prediction - design.r) /
                                design.r)});
    table.addRow({"yaniv (two-point linear) prediction",
                  formatDouble(yaniv_prediction / 1e6, 2) + "M",
                  formatPercent(std::abs(yaniv_prediction - design.r) /
                                design.r)});
    std::printf("%s\n", table.render().c_str());

    double claimed = (data.all4k.r - mos_prediction) / data.all4k.r;
    double actual = (data.all4k.r - design.r) / data.all4k.r;
    std::printf("speedup the architect would report: %s (true: %s)\n",
                formatPercent(claimed).c_str(),
                formatPercent(actual).c_str());
    return 0;
}
