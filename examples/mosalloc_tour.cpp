/**
 * @file
 * Example: a tour of the Mosalloc allocator itself (Section V).
 *
 * Shows the three pools, the brk emulation, the mallopt "tricks" that
 * defeat glibc's direct-mmap paths (the libhugetlbfs bug the paper
 * fixes), and how a mosaic layout changes which page size backs each
 * allocation.
 *
 * Build & run:  ./build/examples/mosalloc_tour
 */

#include <cstdio>

#include "mosalloc/mosalloc.hh"
#include "support/str.hh"

int
main()
{
    using namespace mosaic;
    using namespace mosaic::alloc;

    // A heap pool whose middle 4MB is backed by 2MB pages, rest 4KB.
    MosallocConfig config;
    config.heapLayout = MosaicLayout(
        16_MiB, {MosaicRegion{4_MiB, 4_MiB, PageSize::Page2M}});
    config.anonLayout = MosaicLayout(16_MiB);
    config.filePoolSize = 4_MiB;
    Mosalloc allocator(config);

    std::printf("pools:\n");
    std::printf("  heap  @ 0x%llx  %s  (mosaic: %s)\n",
                static_cast<unsigned long long>(
                    allocator.heapPool().base()),
                formatBytes(allocator.heapPool().size()).c_str(),
                config.heapLayout.toConfigString().c_str());
    std::printf("  anon  @ 0x%llx  %s\n",
                static_cast<unsigned long long>(
                    allocator.anonPool().base()),
                formatBytes(allocator.anonPool().size()).c_str());
    std::printf("  file  @ 0x%llx  %s (always 4KB pages)\n\n",
                static_cast<unsigned long long>(
                    allocator.filePool().base()),
                formatBytes(allocator.filePool().size()).c_str());

    // glibc boots by asking where the program break is.
    VirtAddr brk0 = allocator.sbrk(0);
    std::printf("sbrk(0) -> 0x%llx (the heap pool base: all further "
                "brk traffic lands in the mosaic)\n\n",
                static_cast<unsigned long long>(brk0));

    // Allocate across the pool and see which page size backs what.
    std::printf("%-14s %-14s %-10s\n", "allocation", "address",
                "page size");
    for (Bytes size : {64_KiB, 4_MiB, 2_MiB, 6_MiB}) {
        VirtAddr p = allocator.malloc(size);
        std::printf("%-14s 0x%-12llx %s\n", formatBytes(size).c_str(),
                    static_cast<unsigned long long>(p),
                    pageSizeName(allocator.pageSizeOf(p)).c_str());
    }

    // The mallopt story: with glibc defaults, a big malloc silently
    // bypasses morecore — and so would bypass the mosaic.
    std::printf("\nwith glibc defaults (M_MMAP_MAX > 0):\n");
    allocator.mallopt(MalloptParam::MmapMax, 65536);
    VirtAddr escaped = allocator.malloc(1_MiB);
    std::printf("  1 MiB malloc -> 0x%llx (%s pool!) — the escape "
                "Mosalloc closes via mallopt(M_MMAP_MAX, 0)\n",
                static_cast<unsigned long long>(escaped),
                allocator.anonPool().contains(escaped) ? "anonymous"
                                                       : "heap");
    allocator.mallopt(MalloptParam::MmapMax, 0);
    VirtAddr kept = allocator.malloc(1_MiB);
    std::printf("  after closing it   -> 0x%llx (%s pool)\n\n",
                static_cast<unsigned long long>(kept),
                allocator.heapPool().contains(kept) ? "heap" : "anon");

    // Direct mmap users (graph500-style) get the anonymous pool.
    VirtAddr mapped = allocator.mmap(256_KiB);
    allocator.munmap(mapped, 256_KiB);

    auto stats = allocator.stats();
    std::printf("stats: %llu mallocs, %llu morecore extensions, %llu "
                "mmaps; heap in use %s, anon fragmentation %s\n",
                static_cast<unsigned long long>(stats.mallocCalls),
                static_cast<unsigned long long>(stats.morecoreCalls),
                static_cast<unsigned long long>(stats.mmapCalls),
                formatBytes(stats.heapInUse).c_str(),
                formatPercent(stats.anonFragmentation, 2).c_str());

    // The export the MMU consumes.
    auto mappings = allocator.pageMappings();
    std::uint64_t count4k = 0, count2m = 0;
    for (const auto &mapping : mappings) {
        if (mapping.pageSize == PageSize::Page4K)
            ++count4k;
        else if (mapping.pageSize == PageSize::Page2M)
            ++count2m;
    }
    std::printf("page-table export: %llu x 4KB + %llu x 2MB pages "
                "across all pools\n",
                static_cast<unsigned long long>(count4k),
                static_cast<unsigned long long>(count2m));
    return 0;
}
