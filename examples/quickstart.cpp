/**
 * @file
 * Quickstart: the whole pipeline on one workload and one platform.
 *
 *  1. Pick a workload (gups/8GB) and a platform (SandyBridge).
 *  2. Generate its memory trace once (layout-independent).
 *  3. Run the paper's 54-layout Mosalloc campaign plus the uniform
 *     references, collecting (R, H, M, C) samples.
 *  4. Fit the preexisting linear models and Mosmodel.
 *  5. Report each model's maximal prediction error (Equation 1).
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "cpu/platform.hh"
#include "experiments/campaign.hh"
#include "experiments/dataset.hh"
#include "models/evaluation.hh"
#include "models/mosmodel.hh"
#include "support/str.hh"
#include "workloads/gups.hh"

int
main()
{
    using namespace mosaic;

    // 1. Workload and platform.
    workloads::GupsWorkload workload(workloads::gupsSmall());
    cpu::PlatformSpec platform = cpu::sandyBridge();
    std::printf("workload: %s  (heap pool %s)\n",
                workload.info().label().c_str(),
                formatBytes(workload.heapPoolSize()).c_str());
    std::printf("platform: %s (%s)\n\n", platform.name.c_str(),
                platform.processor.c_str());

    // 2-3. Run the campaign for this single pair.
    exp::CampaignConfig config;
    config.verbose = false;
    exp::Dataset dataset;
    exp::CampaignRunner::runPair(workload, platform, config, dataset);

    models::SampleSet data =
        dataset.sampleSet(platform.name, workload.info().label());
    std::printf("collected %zu mosaic samples;"
                " R4K=%.0f R2M=%.0f R1G=%.0f cycles\n",
                data.samples.size(), data.all4k.r, data.all2m.r,
                data.all1g.r);
    std::printf("TLB sensitive: %s (1GB pages speed it up by %s)\n\n",
                data.tlbSensitive() ? "yes" : "no",
                formatPercent((data.all4k.r - data.all1g.r) /
                              data.all4k.r)
                    .c_str());

    // 4-5. Fit and evaluate every model.
    TextTable table;
    table.setHeader({"model", "max error", "geomean error"});
    for (auto &model : models::makeAllModels()) {
        auto errors = models::evaluateModel(*model, data);
        table.addRow({errors.model, formatPercent(errors.maxError),
                      formatPercent(errors.geoMeanError, 2)});
    }
    std::printf("%s\n", table.render().c_str());

    // Peek inside Mosmodel: which inputs did Lasso keep?
    models::Mosmodel mosmodel;
    mosmodel.fit(data);
    std::printf("mosmodel keeps %zu of %zu coefficients: %s\n",
                mosmodel.numActiveCoefficients(), mosmodel.numFeatures(),
                mosmodel.describe().c_str());
    return 0;
}
