/**
 * @file
 * Example: watching the layout-exploration heuristics work.
 *
 * For one workload, prints every campaign layout as an ASCII strip of
 * the pool (#'s = 2MB-backed), alongside the TLB misses and runtime
 * the simulator measures under it — making Section VI-B's argument
 * visible: growing windows sweep coverage, random windows mostly
 * duplicate the endpoints, sliding windows bracket the miss hot
 * region and generate the interesting mid-range samples.
 *
 * Build & run:  ./build/examples/layout_explorer
 */

#include <cstdio>

#include "cpu/platform.hh"
#include "cpu/system.hh"
#include "layouts/heuristics.hh"
#include "support/str.hh"
#include "trace/miss_profile.hh"
#include "workloads/graph500.hh"

namespace
{

using namespace mosaic;

/** Render the pool as a fixed-width strip; '#' = 2MB, '.' = 4KB. */
std::string
strip(const alloc::MosaicLayout &layout, std::size_t width = 32)
{
    std::string out(width, '.');
    Bytes pool = layout.poolSize();
    for (const auto &region : layout.regions()) {
        std::size_t from = static_cast<std::size_t>(
            region.start * width / pool);
        std::size_t to = static_cast<std::size_t>(
            (region.end() * width + pool - 1) / pool);
        for (std::size_t i = from; i < to && i < width; ++i)
            out[i] = '#';
    }
    return out;
}

} // namespace

int
main()
{
    using namespace mosaic;

    workloads::Graph500Params params;
    params.numVertices = 1u << 17;
    params.refBudget = 150000;
    workloads::Graph500Workload workload(params);
    cpu::PlatformSpec platform = cpu::sandyBridge();

    std::printf("exploring layouts for %s on %s\n",
                workload.info().label().c_str(), platform.name.c_str());
    auto trace = workload.generateTrace();
    trace::MissProfile profile(trace, workload.primaryPoolBase(),
                               workload.primaryPoolSize());
    auto hot = profile.findHotRegion(0.6);
    std::printf("pool %s; 60%%-miss hot region at [%s, %s)\n\n",
                formatBytes(workload.primaryPoolSize()).c_str(),
                formatBytes(hot.start).c_str(),
                formatBytes(hot.end()).c_str());

    auto layouts = layouts::paperCampaignLayouts(
        workload.primaryPoolSize(), profile);

    std::printf("%-14s %-34s %10s %12s\n", "layout",
                "pool ('#' = 2MB backed)", "TLB misses", "runtime");
    std::string last_family;
    for (const auto &named : layouts) {
        // One blank line between heuristic families.
        std::string family = named.name.substr(0, named.name.find('-'));
        if (family != last_family && !last_family.empty())
            std::printf("\n");
        last_family = family;

        // Print every growing/random layout but only every 3rd slide
        // layout to keep the demo readable.
        if (family == "slide") {
            char last = named.name.back();
            if (last != '0' && last != '4' && last != '8')
                continue;
        }
        auto result = cpu::simulateRun(
            platform, workload.makeAllocConfig(named.layout), trace);
        std::printf("%-14s [%s] %10llu %10.2fM\n", named.name.c_str(),
                    strip(named.layout).c_str(),
                    static_cast<unsigned long long>(result.tlbMisses),
                    result.runtimeCycles / 1e6);
    }
    std::printf("\nnote how sliding windows produce the mid-range "
                "samples the models need, while random windows mostly "
                "behave like all-4KB or all-2MB (Section VI-B).\n");
    return 0;
}
