file(REMOVE_RECURSE
  "CMakeFiles/mosaic_campaign.dir/mosaic_campaign.cc.o"
  "CMakeFiles/mosaic_campaign.dir/mosaic_campaign.cc.o.d"
  "mosaic_campaign"
  "mosaic_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
