# Empty dependencies file for mosaic_campaign.
# This may be replaced when dependencies are built.
