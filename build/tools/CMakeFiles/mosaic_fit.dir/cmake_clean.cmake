file(REMOVE_RECURSE
  "CMakeFiles/mosaic_fit.dir/mosaic_fit.cc.o"
  "CMakeFiles/mosaic_fit.dir/mosaic_fit.cc.o.d"
  "mosaic_fit"
  "mosaic_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
