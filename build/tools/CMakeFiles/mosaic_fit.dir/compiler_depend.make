# Empty compiler generated dependencies file for mosaic_fit.
# This may be replaced when dependencies are built.
