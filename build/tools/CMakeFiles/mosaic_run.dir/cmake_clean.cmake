file(REMOVE_RECURSE
  "CMakeFiles/mosaic_run.dir/mosaic_run.cc.o"
  "CMakeFiles/mosaic_run.dir/mosaic_run.cc.o.d"
  "mosaic_run"
  "mosaic_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
