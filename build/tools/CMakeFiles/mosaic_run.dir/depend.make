# Empty dependencies file for mosaic_run.
# This may be replaced when dependencies are built.
