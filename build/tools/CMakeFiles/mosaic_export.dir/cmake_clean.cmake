file(REMOVE_RECURSE
  "CMakeFiles/mosaic_export.dir/mosaic_export.cc.o"
  "CMakeFiles/mosaic_export.dir/mosaic_export.cc.o.d"
  "mosaic_export"
  "mosaic_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
