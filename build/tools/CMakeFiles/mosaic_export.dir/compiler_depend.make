# Empty compiler generated dependencies file for mosaic_export.
# This may be replaced when dependencies are built.
