# Empty compiler generated dependencies file for table34_platforms.
# This may be replaced when dependencies are built.
