file(REMOVE_RECURSE
  "CMakeFiles/table34_platforms.dir/table34_platforms.cpp.o"
  "CMakeFiles/table34_platforms.dir/table34_platforms.cpp.o.d"
  "table34_platforms"
  "table34_platforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table34_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
