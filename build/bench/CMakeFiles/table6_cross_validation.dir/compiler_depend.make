# Empty compiler generated dependencies file for table6_cross_validation.
# This may be replaced when dependencies are built.
