file(REMOVE_RECURSE
  "CMakeFiles/fig03_mcf_curve.dir/fig03_mcf_curve.cpp.o"
  "CMakeFiles/fig03_mcf_curve.dir/fig03_mcf_curve.cpp.o.d"
  "fig03_mcf_curve"
  "fig03_mcf_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_mcf_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
