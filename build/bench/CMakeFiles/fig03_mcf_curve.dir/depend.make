# Empty dependencies file for fig03_mcf_curve.
# This may be replaced when dependencies are built.
