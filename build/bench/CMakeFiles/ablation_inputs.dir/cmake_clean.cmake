file(REMOVE_RECURSE
  "CMakeFiles/ablation_inputs.dir/ablation_inputs.cpp.o"
  "CMakeFiles/ablation_inputs.dir/ablation_inputs.cpp.o.d"
  "ablation_inputs"
  "ablation_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
