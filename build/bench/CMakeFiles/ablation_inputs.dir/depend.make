# Empty dependencies file for ablation_inputs.
# This may be replaced when dependencies are built.
