file(REMOVE_RECURSE
  "CMakeFiles/fig02_model_errors.dir/fig02_model_errors.cpp.o"
  "CMakeFiles/fig02_model_errors.dir/fig02_model_errors.cpp.o.d"
  "fig02_model_errors"
  "fig02_model_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_model_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
