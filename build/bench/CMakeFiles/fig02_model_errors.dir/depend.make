# Empty dependencies file for fig02_model_errors.
# This may be replaced when dependencies are built.
