file(REMOVE_RECURSE
  "CMakeFiles/ablation_walkers.dir/ablation_walkers.cpp.o"
  "CMakeFiles/ablation_walkers.dir/ablation_walkers.cpp.o.d"
  "ablation_walkers"
  "ablation_walkers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_walkers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
