# Empty dependencies file for ablation_walkers.
# This may be replaced when dependencies are built.
