# Empty dependencies file for fig07_basu_sssp.
# This may be replaced when dependencies are built.
