file(REMOVE_RECURSE
  "CMakeFiles/fig07_basu_sssp.dir/fig07_basu_sssp.cpp.o"
  "CMakeFiles/fig07_basu_sssp.dir/fig07_basu_sssp.cpp.o.d"
  "fig07_basu_sssp"
  "fig07_basu_sssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_basu_sssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
