# Empty dependencies file for fig05_max_errors.
# This may be replaced when dependencies are built.
