file(REMOVE_RECURSE
  "CMakeFiles/fig05_max_errors.dir/fig05_max_errors.cpp.o"
  "CMakeFiles/fig05_max_errors.dir/fig05_max_errors.cpp.o.d"
  "fig05_max_errors"
  "fig05_max_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_max_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
