file(REMOVE_RECURSE
  "CMakeFiles/ablation_lasso.dir/ablation_lasso.cpp.o"
  "CMakeFiles/ablation_lasso.dir/ablation_lasso.cpp.o.d"
  "ablation_lasso"
  "ablation_lasso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lasso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
