# Empty dependencies file for ablation_lasso.
# This may be replaced when dependencies are built.
