# Empty compiler generated dependencies file for fig10_gups_poly.
# This may be replaced when dependencies are built.
