file(REMOVE_RECURSE
  "CMakeFiles/fig10_gups_poly.dir/fig10_gups_poly.cpp.o"
  "CMakeFiles/fig10_gups_poly.dir/fig10_gups_poly.cpp.o.d"
  "fig10_gups_poly"
  "fig10_gups_poly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_gups_poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
