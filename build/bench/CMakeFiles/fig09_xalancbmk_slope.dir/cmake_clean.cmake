file(REMOVE_RECURSE
  "CMakeFiles/fig09_xalancbmk_slope.dir/fig09_xalancbmk_slope.cpp.o"
  "CMakeFiles/fig09_xalancbmk_slope.dir/fig09_xalancbmk_slope.cpp.o.d"
  "fig09_xalancbmk_slope"
  "fig09_xalancbmk_slope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_xalancbmk_slope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
