# Empty dependencies file for fig09_xalancbmk_slope.
# This may be replaced when dependencies are built.
