# Empty compiler generated dependencies file for fig08_omnetpp_linear.
# This may be replaced when dependencies are built.
