file(REMOVE_RECURSE
  "CMakeFiles/fig08_omnetpp_linear.dir/fig08_omnetpp_linear.cpp.o"
  "CMakeFiles/fig08_omnetpp_linear.dir/fig08_omnetpp_linear.cpp.o.d"
  "fig08_omnetpp_linear"
  "fig08_omnetpp_linear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_omnetpp_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
