file(REMOVE_RECURSE
  "CMakeFiles/casestudy_1gb_prediction.dir/casestudy_1gb_prediction.cpp.o"
  "CMakeFiles/casestudy_1gb_prediction.dir/casestudy_1gb_prediction.cpp.o.d"
  "casestudy_1gb_prediction"
  "casestudy_1gb_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casestudy_1gb_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
