# Empty compiler generated dependencies file for casestudy_1gb_prediction.
# This may be replaced when dependencies are built.
