file(REMOVE_RECURSE
  "CMakeFiles/ablation_degree.dir/ablation_degree.cpp.o"
  "CMakeFiles/ablation_degree.dir/ablation_degree.cpp.o.d"
  "ablation_degree"
  "ablation_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
