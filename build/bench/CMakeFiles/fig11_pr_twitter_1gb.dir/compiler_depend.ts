# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig11_pr_twitter_1gb.
