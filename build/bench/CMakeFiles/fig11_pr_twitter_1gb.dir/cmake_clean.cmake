file(REMOVE_RECURSE
  "CMakeFiles/fig11_pr_twitter_1gb.dir/fig11_pr_twitter_1gb.cpp.o"
  "CMakeFiles/fig11_pr_twitter_1gb.dir/fig11_pr_twitter_1gb.cpp.o.d"
  "fig11_pr_twitter_1gb"
  "fig11_pr_twitter_1gb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_pr_twitter_1gb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
