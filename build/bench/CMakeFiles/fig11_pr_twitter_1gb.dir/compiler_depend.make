# Empty compiler generated dependencies file for fig11_pr_twitter_1gb.
# This may be replaced when dependencies are built.
