# Empty dependencies file for ablation_interception.
# This may be replaced when dependencies are built.
