file(REMOVE_RECURSE
  "CMakeFiles/ablation_interception.dir/ablation_interception.cpp.o"
  "CMakeFiles/ablation_interception.dir/ablation_interception.cpp.o.d"
  "ablation_interception"
  "ablation_interception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_interception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
