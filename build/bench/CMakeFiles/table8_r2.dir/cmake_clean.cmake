file(REMOVE_RECURSE
  "CMakeFiles/table8_r2.dir/table8_r2.cpp.o"
  "CMakeFiles/table8_r2.dir/table8_r2.cpp.o.d"
  "table8_r2"
  "table8_r2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_r2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
