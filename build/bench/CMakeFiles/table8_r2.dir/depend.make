# Empty dependencies file for table8_r2.
# This may be replaced when dependencies are built.
