
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table7_xalancbmk_counters.cpp" "bench/CMakeFiles/table7_xalancbmk_counters.dir/table7_xalancbmk_counters.cpp.o" "gcc" "bench/CMakeFiles/table7_xalancbmk_counters.dir/table7_xalancbmk_counters.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/mosaic_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/mosaic_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/mosaic_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/layouts/CMakeFiles/mosaic_layouts.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mosaic_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/mosaic_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/memhier/CMakeFiles/mosaic_memhier.dir/DependInfo.cmake"
  "/root/repo/build/src/mosalloc/CMakeFiles/mosaic_mosalloc.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/mosaic_models.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mosaic_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mosaic_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
