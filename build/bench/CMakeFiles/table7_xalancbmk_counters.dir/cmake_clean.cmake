file(REMOVE_RECURSE
  "CMakeFiles/table7_xalancbmk_counters.dir/table7_xalancbmk_counters.cpp.o"
  "CMakeFiles/table7_xalancbmk_counters.dir/table7_xalancbmk_counters.cpp.o.d"
  "table7_xalancbmk_counters"
  "table7_xalancbmk_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_xalancbmk_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
