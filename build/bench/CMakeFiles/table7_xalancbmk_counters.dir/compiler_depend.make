# Empty compiler generated dependencies file for table7_xalancbmk_counters.
# This may be replaced when dependencies are built.
