file(REMOVE_RECURSE
  "CMakeFiles/sensitivity_table.dir/sensitivity_table.cpp.o"
  "CMakeFiles/sensitivity_table.dir/sensitivity_table.cpp.o.d"
  "sensitivity_table"
  "sensitivity_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
