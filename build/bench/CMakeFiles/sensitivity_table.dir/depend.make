# Empty dependencies file for sensitivity_table.
# This may be replaced when dependencies are built.
