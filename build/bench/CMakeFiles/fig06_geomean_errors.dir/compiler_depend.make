# Empty compiler generated dependencies file for fig06_geomean_errors.
# This may be replaced when dependencies are built.
