file(REMOVE_RECURSE
  "CMakeFiles/fig06_geomean_errors.dir/fig06_geomean_errors.cpp.o"
  "CMakeFiles/fig06_geomean_errors.dir/fig06_geomean_errors.cpp.o.d"
  "fig06_geomean_errors"
  "fig06_geomean_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_geomean_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
