# Empty compiler generated dependencies file for ablation_prefetcher.
# This may be replaced when dependencies are built.
