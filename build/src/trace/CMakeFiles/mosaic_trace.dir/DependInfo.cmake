
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/miss_profile.cc" "src/trace/CMakeFiles/mosaic_trace.dir/miss_profile.cc.o" "gcc" "src/trace/CMakeFiles/mosaic_trace.dir/miss_profile.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/trace/CMakeFiles/mosaic_trace.dir/trace.cc.o" "gcc" "src/trace/CMakeFiles/mosaic_trace.dir/trace.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/trace/CMakeFiles/mosaic_trace.dir/trace_io.cc.o" "gcc" "src/trace/CMakeFiles/mosaic_trace.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mosaic_support.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/mosaic_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/mosalloc/CMakeFiles/mosaic_mosalloc.dir/DependInfo.cmake"
  "/root/repo/build/src/memhier/CMakeFiles/mosaic_memhier.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
