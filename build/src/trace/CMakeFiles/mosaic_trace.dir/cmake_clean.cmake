file(REMOVE_RECURSE
  "CMakeFiles/mosaic_trace.dir/miss_profile.cc.o"
  "CMakeFiles/mosaic_trace.dir/miss_profile.cc.o.d"
  "CMakeFiles/mosaic_trace.dir/trace.cc.o"
  "CMakeFiles/mosaic_trace.dir/trace.cc.o.d"
  "CMakeFiles/mosaic_trace.dir/trace_io.cc.o"
  "CMakeFiles/mosaic_trace.dir/trace_io.cc.o.d"
  "libmosaic_trace.a"
  "libmosaic_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
