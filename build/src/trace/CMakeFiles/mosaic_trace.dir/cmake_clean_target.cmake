file(REMOVE_RECURSE
  "libmosaic_trace.a"
)
