# Empty dependencies file for mosaic_layouts.
# This may be replaced when dependencies are built.
