file(REMOVE_RECURSE
  "CMakeFiles/mosaic_layouts.dir/heuristics.cc.o"
  "CMakeFiles/mosaic_layouts.dir/heuristics.cc.o.d"
  "libmosaic_layouts.a"
  "libmosaic_layouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_layouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
