file(REMOVE_RECURSE
  "libmosaic_layouts.a"
)
