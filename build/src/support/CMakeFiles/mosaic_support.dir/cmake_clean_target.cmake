file(REMOVE_RECURSE
  "libmosaic_support.a"
)
