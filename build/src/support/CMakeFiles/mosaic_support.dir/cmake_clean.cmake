file(REMOVE_RECURSE
  "CMakeFiles/mosaic_support.dir/logging.cc.o"
  "CMakeFiles/mosaic_support.dir/logging.cc.o.d"
  "CMakeFiles/mosaic_support.dir/random.cc.o"
  "CMakeFiles/mosaic_support.dir/random.cc.o.d"
  "CMakeFiles/mosaic_support.dir/str.cc.o"
  "CMakeFiles/mosaic_support.dir/str.cc.o.d"
  "libmosaic_support.a"
  "libmosaic_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
