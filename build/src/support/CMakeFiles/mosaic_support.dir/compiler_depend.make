# Empty compiler generated dependencies file for mosaic_support.
# This may be replaced when dependencies are built.
