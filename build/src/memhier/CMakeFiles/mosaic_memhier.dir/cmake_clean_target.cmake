file(REMOVE_RECURSE
  "libmosaic_memhier.a"
)
