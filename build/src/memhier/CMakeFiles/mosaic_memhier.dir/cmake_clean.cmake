file(REMOVE_RECURSE
  "CMakeFiles/mosaic_memhier.dir/cache.cc.o"
  "CMakeFiles/mosaic_memhier.dir/cache.cc.o.d"
  "CMakeFiles/mosaic_memhier.dir/hierarchy.cc.o"
  "CMakeFiles/mosaic_memhier.dir/hierarchy.cc.o.d"
  "CMakeFiles/mosaic_memhier.dir/prefetcher.cc.o"
  "CMakeFiles/mosaic_memhier.dir/prefetcher.cc.o.d"
  "libmosaic_memhier.a"
  "libmosaic_memhier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_memhier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
