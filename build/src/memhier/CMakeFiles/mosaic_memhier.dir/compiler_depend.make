# Empty compiler generated dependencies file for mosaic_memhier.
# This may be replaced when dependencies are built.
