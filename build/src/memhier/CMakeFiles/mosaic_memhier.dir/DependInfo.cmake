
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memhier/cache.cc" "src/memhier/CMakeFiles/mosaic_memhier.dir/cache.cc.o" "gcc" "src/memhier/CMakeFiles/mosaic_memhier.dir/cache.cc.o.d"
  "/root/repo/src/memhier/hierarchy.cc" "src/memhier/CMakeFiles/mosaic_memhier.dir/hierarchy.cc.o" "gcc" "src/memhier/CMakeFiles/mosaic_memhier.dir/hierarchy.cc.o.d"
  "/root/repo/src/memhier/prefetcher.cc" "src/memhier/CMakeFiles/mosaic_memhier.dir/prefetcher.cc.o" "gcc" "src/memhier/CMakeFiles/mosaic_memhier.dir/prefetcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mosaic_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
