# Empty dependencies file for mosaic_vm.
# This may be replaced when dependencies are built.
