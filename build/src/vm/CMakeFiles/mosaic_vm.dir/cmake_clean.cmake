file(REMOVE_RECURSE
  "CMakeFiles/mosaic_vm.dir/mmu.cc.o"
  "CMakeFiles/mosaic_vm.dir/mmu.cc.o.d"
  "CMakeFiles/mosaic_vm.dir/page_table.cc.o"
  "CMakeFiles/mosaic_vm.dir/page_table.cc.o.d"
  "CMakeFiles/mosaic_vm.dir/phys_mem.cc.o"
  "CMakeFiles/mosaic_vm.dir/phys_mem.cc.o.d"
  "CMakeFiles/mosaic_vm.dir/tlb.cc.o"
  "CMakeFiles/mosaic_vm.dir/tlb.cc.o.d"
  "CMakeFiles/mosaic_vm.dir/walker.cc.o"
  "CMakeFiles/mosaic_vm.dir/walker.cc.o.d"
  "libmosaic_vm.a"
  "libmosaic_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
