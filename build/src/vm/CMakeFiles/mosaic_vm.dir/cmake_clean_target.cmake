file(REMOVE_RECURSE
  "libmosaic_vm.a"
)
