file(REMOVE_RECURSE
  "CMakeFiles/mosaic_workloads.dir/gapbs.cc.o"
  "CMakeFiles/mosaic_workloads.dir/gapbs.cc.o.d"
  "CMakeFiles/mosaic_workloads.dir/graph.cc.o"
  "CMakeFiles/mosaic_workloads.dir/graph.cc.o.d"
  "CMakeFiles/mosaic_workloads.dir/graph500.cc.o"
  "CMakeFiles/mosaic_workloads.dir/graph500.cc.o.d"
  "CMakeFiles/mosaic_workloads.dir/gups.cc.o"
  "CMakeFiles/mosaic_workloads.dir/gups.cc.o.d"
  "CMakeFiles/mosaic_workloads.dir/registry.cc.o"
  "CMakeFiles/mosaic_workloads.dir/registry.cc.o.d"
  "CMakeFiles/mosaic_workloads.dir/spec.cc.o"
  "CMakeFiles/mosaic_workloads.dir/spec.cc.o.d"
  "CMakeFiles/mosaic_workloads.dir/workload.cc.o"
  "CMakeFiles/mosaic_workloads.dir/workload.cc.o.d"
  "CMakeFiles/mosaic_workloads.dir/xsbench.cc.o"
  "CMakeFiles/mosaic_workloads.dir/xsbench.cc.o.d"
  "libmosaic_workloads.a"
  "libmosaic_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
