
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/gapbs.cc" "src/workloads/CMakeFiles/mosaic_workloads.dir/gapbs.cc.o" "gcc" "src/workloads/CMakeFiles/mosaic_workloads.dir/gapbs.cc.o.d"
  "/root/repo/src/workloads/graph.cc" "src/workloads/CMakeFiles/mosaic_workloads.dir/graph.cc.o" "gcc" "src/workloads/CMakeFiles/mosaic_workloads.dir/graph.cc.o.d"
  "/root/repo/src/workloads/graph500.cc" "src/workloads/CMakeFiles/mosaic_workloads.dir/graph500.cc.o" "gcc" "src/workloads/CMakeFiles/mosaic_workloads.dir/graph500.cc.o.d"
  "/root/repo/src/workloads/gups.cc" "src/workloads/CMakeFiles/mosaic_workloads.dir/gups.cc.o" "gcc" "src/workloads/CMakeFiles/mosaic_workloads.dir/gups.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/mosaic_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/mosaic_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/spec.cc" "src/workloads/CMakeFiles/mosaic_workloads.dir/spec.cc.o" "gcc" "src/workloads/CMakeFiles/mosaic_workloads.dir/spec.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/mosaic_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/mosaic_workloads.dir/workload.cc.o.d"
  "/root/repo/src/workloads/xsbench.cc" "src/workloads/CMakeFiles/mosaic_workloads.dir/xsbench.cc.o" "gcc" "src/workloads/CMakeFiles/mosaic_workloads.dir/xsbench.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mosaic_support.dir/DependInfo.cmake"
  "/root/repo/build/src/mosalloc/CMakeFiles/mosaic_mosalloc.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mosaic_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/mosaic_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/memhier/CMakeFiles/mosaic_memhier.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
