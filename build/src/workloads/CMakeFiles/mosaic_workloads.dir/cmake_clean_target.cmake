file(REMOVE_RECURSE
  "libmosaic_workloads.a"
)
