file(REMOVE_RECURSE
  "CMakeFiles/mosaic_mosalloc.dir/layout.cc.o"
  "CMakeFiles/mosaic_mosalloc.dir/layout.cc.o.d"
  "CMakeFiles/mosaic_mosalloc.dir/mosalloc.cc.o"
  "CMakeFiles/mosaic_mosalloc.dir/mosalloc.cc.o.d"
  "CMakeFiles/mosaic_mosalloc.dir/page_size.cc.o"
  "CMakeFiles/mosaic_mosalloc.dir/page_size.cc.o.d"
  "CMakeFiles/mosaic_mosalloc.dir/pool.cc.o"
  "CMakeFiles/mosaic_mosalloc.dir/pool.cc.o.d"
  "CMakeFiles/mosaic_mosalloc.dir/thp.cc.o"
  "CMakeFiles/mosaic_mosalloc.dir/thp.cc.o.d"
  "libmosaic_mosalloc.a"
  "libmosaic_mosalloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_mosalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
