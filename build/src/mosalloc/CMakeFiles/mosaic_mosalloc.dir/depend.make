# Empty dependencies file for mosaic_mosalloc.
# This may be replaced when dependencies are built.
