file(REMOVE_RECURSE
  "libmosaic_mosalloc.a"
)
