
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mosalloc/layout.cc" "src/mosalloc/CMakeFiles/mosaic_mosalloc.dir/layout.cc.o" "gcc" "src/mosalloc/CMakeFiles/mosaic_mosalloc.dir/layout.cc.o.d"
  "/root/repo/src/mosalloc/mosalloc.cc" "src/mosalloc/CMakeFiles/mosaic_mosalloc.dir/mosalloc.cc.o" "gcc" "src/mosalloc/CMakeFiles/mosaic_mosalloc.dir/mosalloc.cc.o.d"
  "/root/repo/src/mosalloc/page_size.cc" "src/mosalloc/CMakeFiles/mosaic_mosalloc.dir/page_size.cc.o" "gcc" "src/mosalloc/CMakeFiles/mosaic_mosalloc.dir/page_size.cc.o.d"
  "/root/repo/src/mosalloc/pool.cc" "src/mosalloc/CMakeFiles/mosaic_mosalloc.dir/pool.cc.o" "gcc" "src/mosalloc/CMakeFiles/mosaic_mosalloc.dir/pool.cc.o.d"
  "/root/repo/src/mosalloc/thp.cc" "src/mosalloc/CMakeFiles/mosaic_mosalloc.dir/thp.cc.o" "gcc" "src/mosalloc/CMakeFiles/mosaic_mosalloc.dir/thp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mosaic_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
