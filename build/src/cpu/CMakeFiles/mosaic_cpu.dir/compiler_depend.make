# Empty compiler generated dependencies file for mosaic_cpu.
# This may be replaced when dependencies are built.
