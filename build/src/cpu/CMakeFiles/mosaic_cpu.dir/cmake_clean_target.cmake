file(REMOVE_RECURSE
  "libmosaic_cpu.a"
)
