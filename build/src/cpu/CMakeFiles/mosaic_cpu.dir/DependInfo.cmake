
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/core.cc" "src/cpu/CMakeFiles/mosaic_cpu.dir/core.cc.o" "gcc" "src/cpu/CMakeFiles/mosaic_cpu.dir/core.cc.o.d"
  "/root/repo/src/cpu/platform.cc" "src/cpu/CMakeFiles/mosaic_cpu.dir/platform.cc.o" "gcc" "src/cpu/CMakeFiles/mosaic_cpu.dir/platform.cc.o.d"
  "/root/repo/src/cpu/stats_report.cc" "src/cpu/CMakeFiles/mosaic_cpu.dir/stats_report.cc.o" "gcc" "src/cpu/CMakeFiles/mosaic_cpu.dir/stats_report.cc.o.d"
  "/root/repo/src/cpu/system.cc" "src/cpu/CMakeFiles/mosaic_cpu.dir/system.cc.o" "gcc" "src/cpu/CMakeFiles/mosaic_cpu.dir/system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mosaic_support.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/mosaic_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/memhier/CMakeFiles/mosaic_memhier.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mosaic_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mosalloc/CMakeFiles/mosaic_mosalloc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
