file(REMOVE_RECURSE
  "CMakeFiles/mosaic_cpu.dir/core.cc.o"
  "CMakeFiles/mosaic_cpu.dir/core.cc.o.d"
  "CMakeFiles/mosaic_cpu.dir/platform.cc.o"
  "CMakeFiles/mosaic_cpu.dir/platform.cc.o.d"
  "CMakeFiles/mosaic_cpu.dir/stats_report.cc.o"
  "CMakeFiles/mosaic_cpu.dir/stats_report.cc.o.d"
  "CMakeFiles/mosaic_cpu.dir/system.cc.o"
  "CMakeFiles/mosaic_cpu.dir/system.cc.o.d"
  "libmosaic_cpu.a"
  "libmosaic_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
