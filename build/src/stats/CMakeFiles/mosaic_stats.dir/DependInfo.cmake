
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/kfold.cc" "src/stats/CMakeFiles/mosaic_stats.dir/kfold.cc.o" "gcc" "src/stats/CMakeFiles/mosaic_stats.dir/kfold.cc.o.d"
  "/root/repo/src/stats/lasso.cc" "src/stats/CMakeFiles/mosaic_stats.dir/lasso.cc.o" "gcc" "src/stats/CMakeFiles/mosaic_stats.dir/lasso.cc.o.d"
  "/root/repo/src/stats/matrix.cc" "src/stats/CMakeFiles/mosaic_stats.dir/matrix.cc.o" "gcc" "src/stats/CMakeFiles/mosaic_stats.dir/matrix.cc.o.d"
  "/root/repo/src/stats/metrics.cc" "src/stats/CMakeFiles/mosaic_stats.dir/metrics.cc.o" "gcc" "src/stats/CMakeFiles/mosaic_stats.dir/metrics.cc.o.d"
  "/root/repo/src/stats/poly_features.cc" "src/stats/CMakeFiles/mosaic_stats.dir/poly_features.cc.o" "gcc" "src/stats/CMakeFiles/mosaic_stats.dir/poly_features.cc.o.d"
  "/root/repo/src/stats/scaler.cc" "src/stats/CMakeFiles/mosaic_stats.dir/scaler.cc.o" "gcc" "src/stats/CMakeFiles/mosaic_stats.dir/scaler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mosaic_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
