# Empty compiler generated dependencies file for mosaic_stats.
# This may be replaced when dependencies are built.
