file(REMOVE_RECURSE
  "libmosaic_stats.a"
)
