file(REMOVE_RECURSE
  "CMakeFiles/mosaic_stats.dir/kfold.cc.o"
  "CMakeFiles/mosaic_stats.dir/kfold.cc.o.d"
  "CMakeFiles/mosaic_stats.dir/lasso.cc.o"
  "CMakeFiles/mosaic_stats.dir/lasso.cc.o.d"
  "CMakeFiles/mosaic_stats.dir/matrix.cc.o"
  "CMakeFiles/mosaic_stats.dir/matrix.cc.o.d"
  "CMakeFiles/mosaic_stats.dir/metrics.cc.o"
  "CMakeFiles/mosaic_stats.dir/metrics.cc.o.d"
  "CMakeFiles/mosaic_stats.dir/poly_features.cc.o"
  "CMakeFiles/mosaic_stats.dir/poly_features.cc.o.d"
  "CMakeFiles/mosaic_stats.dir/scaler.cc.o"
  "CMakeFiles/mosaic_stats.dir/scaler.cc.o.d"
  "libmosaic_stats.a"
  "libmosaic_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
