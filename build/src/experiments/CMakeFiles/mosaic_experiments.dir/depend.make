# Empty dependencies file for mosaic_experiments.
# This may be replaced when dependencies are built.
