file(REMOVE_RECURSE
  "libmosaic_experiments.a"
)
