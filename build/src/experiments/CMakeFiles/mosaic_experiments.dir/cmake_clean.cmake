file(REMOVE_RECURSE
  "CMakeFiles/mosaic_experiments.dir/campaign.cc.o"
  "CMakeFiles/mosaic_experiments.dir/campaign.cc.o.d"
  "CMakeFiles/mosaic_experiments.dir/dataset.cc.o"
  "CMakeFiles/mosaic_experiments.dir/dataset.cc.o.d"
  "CMakeFiles/mosaic_experiments.dir/plot_export.cc.o"
  "CMakeFiles/mosaic_experiments.dir/plot_export.cc.o.d"
  "CMakeFiles/mosaic_experiments.dir/report.cc.o"
  "CMakeFiles/mosaic_experiments.dir/report.cc.o.d"
  "libmosaic_experiments.a"
  "libmosaic_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
