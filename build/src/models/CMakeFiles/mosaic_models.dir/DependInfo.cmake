
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/evaluation.cc" "src/models/CMakeFiles/mosaic_models.dir/evaluation.cc.o" "gcc" "src/models/CMakeFiles/mosaic_models.dir/evaluation.cc.o.d"
  "/root/repo/src/models/fixed_models.cc" "src/models/CMakeFiles/mosaic_models.dir/fixed_models.cc.o" "gcc" "src/models/CMakeFiles/mosaic_models.dir/fixed_models.cc.o.d"
  "/root/repo/src/models/mosmodel.cc" "src/models/CMakeFiles/mosaic_models.dir/mosmodel.cc.o" "gcc" "src/models/CMakeFiles/mosaic_models.dir/mosmodel.cc.o.d"
  "/root/repo/src/models/regression_models.cc" "src/models/CMakeFiles/mosaic_models.dir/regression_models.cc.o" "gcc" "src/models/CMakeFiles/mosaic_models.dir/regression_models.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mosaic_support.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mosaic_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
