# Empty dependencies file for mosaic_models.
# This may be replaced when dependencies are built.
