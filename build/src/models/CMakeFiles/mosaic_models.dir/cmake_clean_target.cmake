file(REMOVE_RECURSE
  "libmosaic_models.a"
)
