# Empty compiler generated dependencies file for mosaic_models.
# This may be replaced when dependencies are built.
