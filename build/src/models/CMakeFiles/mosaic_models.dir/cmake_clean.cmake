file(REMOVE_RECURSE
  "CMakeFiles/mosaic_models.dir/evaluation.cc.o"
  "CMakeFiles/mosaic_models.dir/evaluation.cc.o.d"
  "CMakeFiles/mosaic_models.dir/fixed_models.cc.o"
  "CMakeFiles/mosaic_models.dir/fixed_models.cc.o.d"
  "CMakeFiles/mosaic_models.dir/mosmodel.cc.o"
  "CMakeFiles/mosaic_models.dir/mosmodel.cc.o.d"
  "CMakeFiles/mosaic_models.dir/regression_models.cc.o"
  "CMakeFiles/mosaic_models.dir/regression_models.cc.o.d"
  "libmosaic_models.a"
  "libmosaic_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
