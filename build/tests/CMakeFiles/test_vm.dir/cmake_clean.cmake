file(REMOVE_RECURSE
  "CMakeFiles/test_vm.dir/vm/test_mmu.cc.o"
  "CMakeFiles/test_vm.dir/vm/test_mmu.cc.o.d"
  "CMakeFiles/test_vm.dir/vm/test_page_table.cc.o"
  "CMakeFiles/test_vm.dir/vm/test_page_table.cc.o.d"
  "CMakeFiles/test_vm.dir/vm/test_tlb.cc.o"
  "CMakeFiles/test_vm.dir/vm/test_tlb.cc.o.d"
  "CMakeFiles/test_vm.dir/vm/test_walker.cc.o"
  "CMakeFiles/test_vm.dir/vm/test_walker.cc.o.d"
  "test_vm"
  "test_vm.pdb"
  "test_vm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
