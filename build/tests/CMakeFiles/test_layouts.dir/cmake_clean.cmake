file(REMOVE_RECURSE
  "CMakeFiles/test_layouts.dir/layouts/test_heuristics.cc.o"
  "CMakeFiles/test_layouts.dir/layouts/test_heuristics.cc.o.d"
  "test_layouts"
  "test_layouts.pdb"
  "test_layouts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
