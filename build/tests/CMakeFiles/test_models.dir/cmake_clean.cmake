file(REMOVE_RECURSE
  "CMakeFiles/test_models.dir/models/test_fixed_models.cc.o"
  "CMakeFiles/test_models.dir/models/test_fixed_models.cc.o.d"
  "CMakeFiles/test_models.dir/models/test_mosmodel_config.cc.o"
  "CMakeFiles/test_models.dir/models/test_mosmodel_config.cc.o.d"
  "CMakeFiles/test_models.dir/models/test_regression_models.cc.o"
  "CMakeFiles/test_models.dir/models/test_regression_models.cc.o.d"
  "test_models"
  "test_models.pdb"
  "test_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
