file(REMOVE_RECURSE
  "CMakeFiles/test_memhier.dir/memhier/test_cache.cc.o"
  "CMakeFiles/test_memhier.dir/memhier/test_cache.cc.o.d"
  "CMakeFiles/test_memhier.dir/memhier/test_cache_properties.cc.o"
  "CMakeFiles/test_memhier.dir/memhier/test_cache_properties.cc.o.d"
  "CMakeFiles/test_memhier.dir/memhier/test_prefetcher.cc.o"
  "CMakeFiles/test_memhier.dir/memhier/test_prefetcher.cc.o.d"
  "test_memhier"
  "test_memhier.pdb"
  "test_memhier[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memhier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
