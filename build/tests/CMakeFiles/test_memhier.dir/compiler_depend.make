# Empty compiler generated dependencies file for test_memhier.
# This may be replaced when dependencies are built.
