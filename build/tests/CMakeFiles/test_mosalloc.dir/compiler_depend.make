# Empty compiler generated dependencies file for test_mosalloc.
# This may be replaced when dependencies are built.
