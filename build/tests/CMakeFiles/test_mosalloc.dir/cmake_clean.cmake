file(REMOVE_RECURSE
  "CMakeFiles/test_mosalloc.dir/mosalloc/test_layout.cc.o"
  "CMakeFiles/test_mosalloc.dir/mosalloc/test_layout.cc.o.d"
  "CMakeFiles/test_mosalloc.dir/mosalloc/test_mosalloc.cc.o"
  "CMakeFiles/test_mosalloc.dir/mosalloc/test_mosalloc.cc.o.d"
  "CMakeFiles/test_mosalloc.dir/mosalloc/test_mosalloc_stress.cc.o"
  "CMakeFiles/test_mosalloc.dir/mosalloc/test_mosalloc_stress.cc.o.d"
  "CMakeFiles/test_mosalloc.dir/mosalloc/test_pools.cc.o"
  "CMakeFiles/test_mosalloc.dir/mosalloc/test_pools.cc.o.d"
  "CMakeFiles/test_mosalloc.dir/mosalloc/test_thp.cc.o"
  "CMakeFiles/test_mosalloc.dir/mosalloc/test_thp.cc.o.d"
  "test_mosalloc"
  "test_mosalloc.pdb"
  "test_mosalloc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mosalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
