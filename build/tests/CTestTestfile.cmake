# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_mosalloc[1]_include.cmake")
include("/root/repo/build/tests/test_memhier[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_layouts[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_experiments[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_tools[1]_include.cmake")
