# Empty dependencies file for design_eval_1gb.
# This may be replaced when dependencies are built.
