file(REMOVE_RECURSE
  "CMakeFiles/design_eval_1gb.dir/design_eval_1gb.cpp.o"
  "CMakeFiles/design_eval_1gb.dir/design_eval_1gb.cpp.o.d"
  "design_eval_1gb"
  "design_eval_1gb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_eval_1gb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
