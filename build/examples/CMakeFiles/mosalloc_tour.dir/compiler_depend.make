# Empty compiler generated dependencies file for mosalloc_tour.
# This may be replaced when dependencies are built.
