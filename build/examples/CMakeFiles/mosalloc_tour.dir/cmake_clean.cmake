file(REMOVE_RECURSE
  "CMakeFiles/mosalloc_tour.dir/mosalloc_tour.cpp.o"
  "CMakeFiles/mosalloc_tour.dir/mosalloc_tour.cpp.o.d"
  "mosalloc_tour"
  "mosalloc_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosalloc_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
