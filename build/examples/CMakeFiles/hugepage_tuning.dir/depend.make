# Empty dependencies file for hugepage_tuning.
# This may be replaced when dependencies are built.
