file(REMOVE_RECURSE
  "CMakeFiles/hugepage_tuning.dir/hugepage_tuning.cpp.o"
  "CMakeFiles/hugepage_tuning.dir/hugepage_tuning.cpp.o.d"
  "hugepage_tuning"
  "hugepage_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hugepage_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
