/**
 * @file
 * mosaic_campaign: run a (subset of the) measurement campaign from the
 * command line and write the dataset CSV.
 *
 * The campaign is fault-tolerant: failed cells are reported in a
 * summary instead of aborting the run, completed pairs are
 * checkpointed to the output CSV with atomic writes, and --resume
 * skips cells a previous (interrupted) run already covered.
 *
 * Cells are simulated by a parallel work-queue scheduler (--jobs N);
 * the CSV produced is byte-identical for any worker count.
 *
 * Examples:
 *   mosaic_campaign --out my_dataset.csv
 *   mosaic_campaign --workloads spec06/mcf,gups/8GB \
 *                   --platforms SandyBridge --jobs 4 --out mcf.csv
 *   mosaic_campaign --out big.csv --resume --trace-cache traces/
 *
 * Exit codes: 0 all cells completed, 2 usage error, 3 campaign
 * finished but some cells failed (the summary lists them).
 */

#include <cstdio>

#include "experiments/campaign.hh"
#include "support/io_util.hh"
#include "support/str.hh"
#include "tools/cli_common.hh"

namespace
{

constexpr const char *usageText =
    "usage: mosaic_campaign [--workloads a,b,...] [--platforms x,y]\n"
    "                       [--jobs N] [--no-1gb] [--out FILE]\n"
    "                       [--resume] [--trace-cache DIR]\n"
    "                       [--checkpoint-every N] [--max-retries N]\n"
    "                       [--fused] [--fused-group N]\n"
    "                       [--shard I/N] [--cell-timeout SECONDS]\n"
    "                       [--mem-frames N] [--replacement POLICY]\n"
    "                       [--swap-cost CYCLES]\n"
    "                       [--writeback-cost CYCLES]\n"
    "                       [--co-workload LABEL]\n"
    "                       [--sample-mode off|interval]\n"
    "                       [--sample-interval N] [--sample-clusters K]\n"
    "                       [--sample-warmup N]\n"
    "                       [--metrics-out FILE]\n"
    "defaults: all 19 workloads, the paper's 3 platforms, jobs =\n"
    "          hardware concurrency, out = mosaic_dataset.csv,\n"
    "          checkpoint every pair\n"
    "--jobs picks the worker-thread count; the dataset CSV is\n"
    "byte-identical for any value (--threads is a deprecated alias).\n"
    "--fused replays groups of layouts of one (platform, workload)\n"
    "pair through a single shared-trace pass (--fused-group layouts\n"
    "per pass, default 4); per-layout results are bit-identical, so\n"
    "the CSV is byte-identical with or without it.\n"
    "--resume keeps cells already present in --out instead of\n"
    "recomputing them; without it the output is rebuilt from scratch.\n"
    "--shard I/N runs only the cells the deterministic round-robin\n"
    "partition assigns to shard I (0-based) of N; the output CSV\n"
    "carries an embedded manifest so `mosaic_merge` can validate and\n"
    "splice the N shard CSVs into the byte-identical canonical\n"
    "dataset.\n"
    "--cell-timeout gives each cell a watchdog budget in seconds; a\n"
    "cell that exceeds it fails with a timeout error instead of\n"
    "hanging its worker (0 = off, the default).\n"
    "--mem-frames bounds physical memory to N 4KB frames per cell and\n"
    "simulates demand paging (0 = unbounded, the default — the CSV is\n"
    "then byte-identical to a classic run); bounded runs extend every\n"
    "row with the S (swap cycles) column. --replacement picks the\n"
    "eviction policy (fifo, lru, clock; default fifo); --swap-cost\n"
    "and --writeback-cost set the major-fault and dirty-writeback\n"
    "charge in cycles. --co-workload replays every cell against the\n"
    "named workload (all-4KB baseline) over one shared frame pool and\n"
    "records the primary tenant's counters under interference;\n"
    "requires --mem-frames > 0 and cannot be combined with --shard.\n"
    "--sample-mode interval replays only one representative interval\n"
    "per behavior cluster of each trace (plus a warmup prefix) and\n"
    "records cluster-weighted extrapolated counters, extending every\n"
    "row with the est_err column (the reported error bound).\n"
    "--sample-interval sets the interval length in trace records\n"
    "(default 16384), --sample-clusters the cluster count K (default\n"
    "8), --sample-warmup the per-segment warmup prefix in records\n"
    "(default 4096). The sampled CSV is byte-identical for any\n"
    "--jobs/--shard/--fused combination; --sample-mode off (the\n"
    "default) is byte-identical to a classic full-replay run.\n"
    "Incompatible with --co-workload.\n"
    "--metrics-out writes a JSON run manifest (config, per-phase\n"
    "timings, trace-cache/retry counters, failures) after the run.\n";

int
campaignMain(int argc, char **argv)
{
    using namespace mosaic;
    auto args = cli::parseArgs(argc, argv);
    if (args.has("help"))
        cli::usage(usageText);

    exp::CampaignConfig config;
    if (args.has("workloads")) {
        for (const auto &label :
             splitString(args.get("workloads"), ',')) {
            if (!trimString(label).empty())
                config.workloads.push_back(trimString(label));
        }
    }
    if (args.has("platforms")) {
        config.platforms.clear();
        for (const auto &name :
             splitString(args.get("platforms"), ',')) {
            if (!trimString(name).empty())
                config.platforms.push_back(
                    cpu::platformByName(trimString(name)));
        }
    }
    if (args.has("jobs"))
        config.jobs = static_cast<unsigned>(cli::unwrapOrDie(
            "mosaic_campaign",
            cli::parseUnsignedValue("jobs", args.get("jobs"), 1,
                                    4096)));
    else if (args.has("threads")) // deprecated alias, kept for scripts
        config.jobs = static_cast<unsigned>(cli::unwrapOrDie(
            "mosaic_campaign",
            cli::parseUnsignedValue("threads", args.get("threads"), 1,
                                    4096)));
    if (args.has("no-1gb"))
        config.include1g = false;
    if (args.has("trace-cache"))
        config.traceCacheDir = args.get("trace-cache");
    if (args.has("checkpoint-every"))
        config.checkpointEvery = cli::unwrapOrDie(
            "mosaic_campaign",
            cli::unsignedOption(args, "checkpoint-every", 0));
    if (args.has("max-retries"))
        config.retry.maxAttempts =
            1 + static_cast<unsigned>(cli::unwrapOrDie(
                    "mosaic_campaign",
                    cli::parseUnsignedValue(
                        "max-retries", args.get("max-retries"), 0,
                        100)));
    if (args.has("fused"))
        config.fused = true;
    if (args.has("fused-group")) {
        config.fused = true;
        config.fusedGroupSize = static_cast<unsigned>(cli::unwrapOrDie(
            "mosaic_campaign",
            cli::parseUnsignedValue("fused-group",
                                    args.get("fused-group"), 1, 64)));
    }
    if (args.has("shard")) {
        const std::string spec = args.get("shard");
        auto slash = spec.find('/');
        std::uint64_t index = 0, count = 0;
        if (slash == std::string::npos ||
            !parseUnsignedFull(spec.substr(0, slash), index) ||
            !parseUnsignedFull(spec.substr(slash + 1), count) ||
            count == 0 || index >= count) {
            std::fprintf(stderr,
                         "mosaic_campaign: bad --shard '%s' (want "
                         "I/N with 0 <= I < N)\n",
                         spec.c_str());
            return 2;
        }
        config.shardIndex = static_cast<unsigned>(index);
        config.shardCount = static_cast<unsigned>(count);
    }
    if (args.has("cell-timeout"))
        config.cellTimeoutSeconds = cli::unwrapOrDie(
            "mosaic_campaign",
            cli::parseDoubleValue("cell-timeout",
                                  args.get("cell-timeout"), 0.0,
                                  86400.0));
    if (args.has("mem-frames"))
        config.os.memFrames = cli::unwrapOrDie(
            "mosaic_campaign",
            cli::parseUnsignedValue("mem-frames",
                                    args.get("mem-frames"), 0,
                                    1ull << 28));
    if (args.has("replacement"))
        config.os.policy = cli::unwrapOrDie(
            "mosaic_campaign",
            vm::parseReplacementPolicy(args.get("replacement")));
    if (args.has("swap-cost"))
        config.os.majorFaultCycles = cli::unwrapOrDie(
            "mosaic_campaign",
            cli::parseUnsignedValue("swap-cost", args.get("swap-cost"),
                                    0, 1ull << 32));
    if (args.has("writeback-cost"))
        config.os.writebackCycles = cli::unwrapOrDie(
            "mosaic_campaign",
            cli::parseUnsignedValue("writeback-cost",
                                    args.get("writeback-cost"), 0,
                                    1ull << 32));
    if (args.has("co-workload"))
        config.coWorkload = args.get("co-workload");
    if (args.has("sample-mode")) {
        auto mode = sampling::sampleModeFromName(
            trimString(args.get("sample-mode")));
        if (!mode) {
            std::fprintf(stderr,
                         "mosaic_campaign: bad --sample-mode '%s' "
                         "(want off or interval)\n",
                         args.get("sample-mode").c_str());
            return 2;
        }
        config.sampling.mode = *mode;
    }
    if (args.has("sample-interval")) {
        config.sampling.intervalRecords = cli::unwrapOrDie(
            "mosaic_campaign",
            cli::parseUnsignedValue("sample-interval",
                                    args.get("sample-interval"), 1,
                                    1ull << 32));
    }
    if (args.has("sample-clusters")) {
        config.sampling.clusters = static_cast<std::uint32_t>(
            cli::unwrapOrDie(
                "mosaic_campaign",
                cli::parseUnsignedValue("sample-clusters",
                                        args.get("sample-clusters"), 1,
                                        1ull << 20)));
    }
    if (args.has("sample-warmup")) {
        config.sampling.warmupRecords = cli::unwrapOrDie(
            "mosaic_campaign",
            cli::parseUnsignedValue("sample-warmup",
                                    args.get("sample-warmup"), 0,
                                    1ull << 32));
    }
    if (config.sampling.enabled() && !config.coWorkload.empty()) {
        std::fprintf(stderr,
                     "mosaic_campaign: --sample-mode interval cannot "
                     "be combined with --co-workload\n");
        return 2;
    }
    if (!config.coWorkload.empty() && !config.os.paged()) {
        std::fprintf(stderr,
                     "mosaic_campaign: --co-workload requires "
                     "--mem-frames > 0\n");
        return 2;
    }
    if (!config.coWorkload.empty() && config.shardCount > 1) {
        std::fprintf(stderr,
                     "mosaic_campaign: --co-workload cannot be "
                     "combined with --shard\n");
        return 2;
    }

    std::string out = args.get("out", exp::defaultDatasetPath());
    exp::CampaignRunner runner(config);
    if (!args.has("resume")) {
        // A fresh run must not resume from a stale file of the same
        // name.
        removeFileIfExists(out);
    }
    ScopedTimer total_timer(metrics(), "campaign/total");
    exp::CampaignReport report = runner.runReport(out);
    total_timer.stop();

    RunManifest manifest("mosaic_campaign");
    const auto &effective = runner.config();
    std::vector<std::string> platform_names;
    for (const auto &platform : effective.platforms)
        platform_names.push_back(platform.name);
    manifest.setConfig("out", out);
    manifest.setConfig("workloads", effective.workloads);
    manifest.setConfig("platforms", platform_names);
    manifest.setConfig("jobs",
                       static_cast<std::uint64_t>(
                           runner.effectiveJobs()));
    manifest.setConfig("include_1gb", effective.include1g);
    manifest.setConfig("seed", effective.seed);
    manifest.setConfig("resume", args.has("resume"));
    manifest.setConfig("trace_cache_dir", effective.traceCacheDir);
    manifest.setConfig("checkpoint_every",
                       static_cast<std::uint64_t>(
                           effective.checkpointEvery));
    manifest.setConfig("fused", effective.fused);
    manifest.setConfig("fused_group",
                       static_cast<std::uint64_t>(
                           effective.fusedGroupSize));
    manifest.setConfig("shard_index",
                       static_cast<std::uint64_t>(
                           effective.shardIndex));
    manifest.setConfig("shard_count",
                       static_cast<std::uint64_t>(
                           effective.shardCount));
    manifest.setConfig("cell_timeout_seconds",
                       std::to_string(effective.cellTimeoutSeconds));
    manifest.setConfig("mem_frames",
                       static_cast<std::uint64_t>(
                           effective.os.memFrames));
    manifest.setConfig("replacement",
                       std::string(vm::replacementPolicyName(
                           effective.os.policy)));
    manifest.setConfig("swap_cost",
                       static_cast<std::uint64_t>(
                           effective.os.majorFaultCycles));
    manifest.setConfig("writeback_cost",
                       static_cast<std::uint64_t>(
                           effective.os.writebackCycles));
    manifest.setConfig("co_workload", effective.coWorkload);
    manifest.setConfig("sample_mode",
                       std::string(sampling::sampleModeName(
                           effective.sampling.mode)));
    manifest.setConfig("sample_interval",
                       static_cast<std::uint64_t>(
                           effective.sampling.intervalRecords));
    manifest.setConfig("sample_clusters",
                       static_cast<std::uint64_t>(
                           effective.sampling.clusters));
    manifest.setConfig("sample_warmup",
                       static_cast<std::uint64_t>(
                           effective.sampling.warmupRecords));
    manifest.setConfig("sample_tag", effective.sampling.tag());
    for (const auto &failure : report.failures) {
        manifest.addFailure(failure.platform + "/" + failure.workload +
                                "/" + failure.layout,
                            failure.error.str());
    }
    cli::writeManifestIfRequested(args, manifest);

    std::printf("wrote %zu runs (%zu platforms x %zu workloads) to %s\n",
                report.dataset.totalRuns(),
                report.dataset.platforms().size(),
                report.dataset.workloads().size(), out.c_str());
    std::printf("%s", report.summary().c_str());
    return report.allOk() ? 0 : 3;
}

} // namespace

int
main(int argc, char **argv)
{
    return mosaic::cli::runGuarded(
        "mosaic_campaign", [&] { return campaignMain(argc, argv); });
}
