/**
 * @file
 * mosaic_campaign: run a (subset of the) measurement campaign from the
 * command line and write the dataset CSV.
 *
 * Examples:
 *   mosaic_campaign --out my_dataset.csv
 *   mosaic_campaign --workloads spec06/mcf,gups/8GB \
 *                   --platforms SandyBridge --threads 2 --out mcf.csv
 */

#include <cstdio>

#include "experiments/campaign.hh"
#include "support/str.hh"
#include "tools/cli_common.hh"

namespace
{

constexpr const char *usageText =
    "usage: mosaic_campaign [--workloads a,b,...] [--platforms x,y]\n"
    "                       [--threads N] [--no-1gb] [--out FILE]\n"
    "defaults: all 19 workloads, the paper's 3 platforms, 2 threads,\n"
    "          out = mosaic_dataset.csv\n";

} // namespace

int
main(int argc, char **argv)
{
    using namespace mosaic;
    auto args = cli::parseArgs(argc, argv);
    if (args.has("help"))
        cli::usage(usageText);

    exp::CampaignConfig config;
    if (args.has("workloads")) {
        for (const auto &label :
             splitString(args.get("workloads"), ',')) {
            if (!trimString(label).empty())
                config.workloads.push_back(trimString(label));
        }
    }
    if (args.has("platforms")) {
        config.platforms.clear();
        for (const auto &name :
             splitString(args.get("platforms"), ',')) {
            if (!trimString(name).empty())
                config.platforms.push_back(
                    cpu::platformByName(trimString(name)));
        }
    }
    if (args.has("threads"))
        config.threads =
            static_cast<unsigned>(std::stoul(args.get("threads")));
    if (args.has("no-1gb"))
        config.include1g = false;

    std::string out = args.get("out", exp::defaultDatasetPath());
    exp::CampaignRunner runner(config);
    exp::Dataset dataset = runner.run();
    dataset.save(out);
    std::printf("wrote %zu runs (%zu platforms x %zu workloads) to %s\n",
                dataset.totalRuns(), dataset.platforms().size(),
                dataset.workloads().size(), out.c_str());
    return 0;
}
