/**
 * @file
 * serve_loadgen: closed-loop load generator for mosaic_serve. Each
 * stage opens N concurrent client connections, issues PREDICT queries
 * back-to-back, and reports predictions/sec plus p50/p99 latency.
 * Writes a "mosaic-serve-bench/1" JSON report gated by
 * check_bench_regression.py.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <thread>
#include <vector>

#include "support/io_util.hh"
#include "support/metrics.hh"
#include "tools/cli_common.hh"

using namespace mosaic;

namespace
{

const char *kUsage =
    "usage: serve_loadgen (--socket PATH | --port N)\n"
    "                     --platform P --workload W\n"
    "                     [--clients LIST] [--requests N]\n"
    "                     [--model NAME] [--out FILE]\n"
    "\n"
    "Benchmark a running mosaic_serve daemon.\n"
    "  --socket PATH   connect to a Unix-domain socket\n"
    "  --port N        connect to 127.0.0.1:N\n"
    "  --platform P    platform of the PREDICT query (required)\n"
    "  --workload W    workload of the PREDICT query (required)\n"
    "  --clients LIST  comma-separated stage sizes (default 1,8,64)\n"
    "  --requests N    requests per client per stage (default 2000)\n"
    "  --model NAME    model to query (default mosmodel)\n"
    "  --out FILE      write the mosaic-serve-bench/1 JSON report\n";

struct Target
{
    std::string socketPath;
    std::uint16_t port = 0;
};

int
connectTo(const Target &target)
{
    if (!target.socketPath.empty()) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return -1;
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, target.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd);
            return -1;
        }
        return fd;
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(target.port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

/** Send the full line; read one '\n'-terminated response. */
bool
roundTrip(int fd, const std::string &request, std::string &response,
          std::string &carry)
{
    std::size_t sent = 0;
    while (sent < request.size()) {
        const ssize_t n = ::send(fd, request.data() + sent,
                                 request.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        sent += static_cast<std::size_t>(n);
    }
    for (;;) {
        const std::size_t nl = carry.find('\n');
        if (nl != std::string::npos) {
            response = carry.substr(0, nl);
            carry.erase(0, nl + 1);
            return true;
        }
        char chunk[4096];
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            return false;
        carry.append(chunk, static_cast<std::size_t>(n));
    }
}

struct StageResult
{
    unsigned clients = 0;
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    double seconds = 0.0;
    double predictionsPerSec = 0.0;
    std::uint64_t p50Usec = 0;
    std::uint64_t p99Usec = 0;
};

std::uint64_t
percentileUsec(std::vector<std::uint64_t> &sorted, double fraction)
{
    if (sorted.empty())
        return 0;
    const std::size_t rank = static_cast<std::size_t>(
        fraction * static_cast<double>(sorted.size() - 1));
    return sorted[rank];
}

} // namespace

int
main(int argc, char **argv)
{
    return cli::runGuarded("serve_loadgen", [&]() -> int {
        cli::Args args = cli::parseArgs(argc, argv);
        if (args.has("help") ||
            (!args.has("socket") && !args.has("port")) ||
            !args.has("platform") || !args.has("workload")) {
            cli::usage(kUsage);
        }

        Target target;
        target.socketPath = args.get("socket");
        if (!args.has("socket")) {
            target.port = static_cast<std::uint16_t>(cli::unwrapOrDie(
                "serve_loadgen",
                cli::parseUnsignedValue("port", args.get("port"), 1,
                                        65535)));
        }
        const std::uint64_t perClient = cli::unwrapOrDie(
            "serve_loadgen",
            cli::unsignedOption(args, "requests", 2000, 1,
                                100000000));

        std::vector<unsigned> stages;
        for (const std::string &word :
             splitString(args.get("clients", "1,8,64"), ',')) {
            stages.push_back(
                static_cast<unsigned>(cli::unwrapOrDie(
                    "serve_loadgen",
                    cli::parseUnsignedValue("clients",
                                            trimString(word), 1,
                                            4096))));
        }

        const std::string query =
            "PREDICT " + args.get("platform") + " " +
            args.get("workload") + " h=1000 m=100 c=50000 model=" +
            args.get("model", "mosmodel") + "\n";

        std::vector<StageResult> results;
        for (unsigned clients : stages) {
            std::vector<std::thread> threads;
            std::vector<std::vector<std::uint64_t>> latencies(clients);
            std::atomic<std::uint64_t> ok{0}, errors{0};

            const auto begin = std::chrono::steady_clock::now();
            for (unsigned c = 0; c < clients; ++c) {
                threads.emplace_back([&, c] {
                    const int fd = connectTo(target);
                    if (fd < 0) {
                        errors.fetch_add(perClient);
                        return;
                    }
                    std::string response, carry;
                    auto &mine = latencies[c];
                    mine.reserve(perClient);
                    for (std::uint64_t i = 0; i < perClient; ++i) {
                        const auto t0 =
                            std::chrono::steady_clock::now();
                        if (!roundTrip(fd, query, response, carry)) {
                            errors.fetch_add(1);
                            break;
                        }
                        const auto t1 =
                            std::chrono::steady_clock::now();
                        if (response.rfind("ok", 0) == 0) {
                            ok.fetch_add(1);
                        } else {
                            errors.fetch_add(1);
                        }
                        mine.push_back(static_cast<std::uint64_t>(
                            std::chrono::duration_cast<
                                std::chrono::microseconds>(t1 - t0)
                                .count()));
                    }
                    ::close(fd);
                });
            }
            for (auto &thread : threads)
                thread.join();
            const double seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - begin)
                    .count();

            std::vector<std::uint64_t> all;
            for (auto &mine : latencies)
                all.insert(all.end(), mine.begin(), mine.end());
            std::sort(all.begin(), all.end());

            StageResult stage;
            stage.clients = clients;
            stage.requests = ok.load();
            stage.errors = errors.load();
            stage.seconds = seconds;
            stage.predictionsPerSec =
                seconds > 0.0
                    ? static_cast<double>(ok.load()) / seconds
                    : 0.0;
            stage.p50Usec = percentileUsec(all, 0.50);
            stage.p99Usec = percentileUsec(all, 0.99);
            results.push_back(stage);

            std::printf("clients=%u requests=%llu errors=%llu "
                        "%.0f predictions/sec p50=%lluus p99=%lluus\n",
                        stage.clients,
                        static_cast<unsigned long long>(
                            stage.requests),
                        static_cast<unsigned long long>(stage.errors),
                        stage.predictionsPerSec,
                        static_cast<unsigned long long>(stage.p50Usec),
                        static_cast<unsigned long long>(
                            stage.p99Usec));
            std::fflush(stdout);
        }

        bool anyOk = false;
        for (const StageResult &stage : results)
            anyOk = anyOk || stage.requests > 0;

        if (args.has("out")) {
            std::ostringstream json;
            json << "{\n  \"schema\": \"mosaic-serve-bench/1\",\n"
                 << "  \"platform\": \""
                 << jsonEscape(args.get("platform")) << "\",\n"
                 << "  \"workload\": \""
                 << jsonEscape(args.get("workload")) << "\",\n"
                 << "  \"stages\": [\n";
            for (std::size_t i = 0; i < results.size(); ++i) {
                const StageResult &stage = results[i];
                json << "    {\"clients\": " << stage.clients
                     << ", \"requests\": " << stage.requests
                     << ", \"errors\": " << stage.errors
                     << ", \"seconds\": "
                     << formatDouble(stage.seconds, 3)
                     << ", \"predictions_per_sec\": "
                     << formatDouble(stage.predictionsPerSec, 1)
                     << ", \"p50_usec\": " << stage.p50Usec
                     << ", \"p99_usec\": " << stage.p99Usec << "}"
                     << (i + 1 < results.size() ? "," : "") << "\n";
            }
            json << "  ]\n}\n";
            auto written =
                writeFileAtomic(args.get("out"), json.str());
            if (!written.ok()) {
                std::fprintf(stderr, "serve_loadgen: %s\n",
                             written.error().str().c_str());
                return 1;
            }
        }
        return anyOk ? 0 : 1;
    });
}
