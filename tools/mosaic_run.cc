/**
 * @file
 * mosaic_run: simulate one (workload, platform, layout) triple and
 * print the PMU readout — the smallest unit of the paper's
 * methodology, scriptable.
 *
 * --layout accepts a comma-separated list of specs; the layouts are
 * simulated in parallel over --jobs worker threads (each worker owns
 * its simulator; the shared trace is immutable) and the rows print in
 * the order given, independent of the worker count. A spec containing
 * "config:" is always one layout (config strings use commas
 * internally).
 *
 * Examples:
 *   mosaic_run --workload spec06/mcf --platform SandyBridge \
 *              --layout all-2MB
 *   mosaic_run --workload gups/8GB --platform Broadwell \
 *              --layout window:0:64MiB --csv
 *   mosaic_run --workload gups/8GB --platform Broadwell \
 *              --layout all-4KB,all-2MB,all-1GB --jobs 3 --csv
 *   mosaic_run --list
 */

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "cpu/stats_report.hh"
#include "cpu/system.hh"
#include "mosalloc/layout.hh"
#include "support/fault_injector.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/sim_context.hh"
#include "support/str.hh"
#include "tools/cli_common.hh"
#include "workloads/registry.hh"

namespace
{

using namespace mosaic;

constexpr const char *usageText =
    "usage: mosaic_run --workload <label> --platform <name> "
    "--layout <spec>[,<spec>...]\n"
    "                 [--jobs N] [--csv|--stats] [--metrics-out FILE]\n"
    "       mosaic_run --list\n"
    "layout specs:\n"
    "  all-4KB | all-2MB | all-1GB      uniform page size\n"
    "  window:<start>:<len>             one 2MB window (sizes accept\n"
    "                                   KiB/MiB/GiB suffixes)\n"
    "  config:<string>                  MosaicLayout config string\n"
    "                                   (cannot appear in a comma list)\n"
    "multiple layouts run in parallel over --jobs worker threads\n"
    "(default: hardware concurrency) and print as CSV rows in the\n"
    "order given.\n";

/** Parse "64MiB"-style sizes; Parse error on bad suffixes/numbers. */
Result<Bytes>
parseSize(const std::string &text)
{
    std::size_t pos = 0;
    double value = 0.0;
    try {
        value = std::stod(text, &pos);
    } catch (const std::exception &) {
        return parseError("bad size value: " + text);
    }
    std::string suffix = trimString(text.substr(pos));
    if (suffix == "KiB" || suffix == "K")
        return static_cast<Bytes>(value * 1024);
    if (suffix == "MiB" || suffix == "M")
        return static_cast<Bytes>(value * 1024 * 1024);
    if (suffix == "GiB" || suffix == "G")
        return static_cast<Bytes>(value * 1024 * 1024 * 1024);
    if (suffix.empty() || suffix == "B")
        return static_cast<Bytes>(value);
    return parseError("bad size suffix: " + suffix);
}

Result<alloc::MosaicLayout>
parseLayout(const std::string &spec, Bytes pool_size)
{
    using alloc::MosaicLayout;
    using alloc::PageSize;
    if (spec == "all-4KB")
        return MosaicLayout(pool_size);
    if (spec == "all-2MB")
        return MosaicLayout::uniform(pool_size, PageSize::Page2M);
    if (spec == "all-1GB")
        return MosaicLayout::uniform(pool_size, PageSize::Page1G);
    if (spec.rfind("window:", 0) == 0) {
        auto fields = splitString(spec.substr(7), ':');
        if (fields.size() != 2)
            return parseError("bad window spec: " + spec);
        auto start = parseSize(fields[0]);
        if (!start.ok())
            return start.error().withContext("window start in " + spec);
        auto length = parseSize(fields[1]);
        if (!length.ok())
            return length.error().withContext("window length in " + spec);
        return MosaicLayout::withWindow(pool_size, start.value(),
                                        length.value(),
                                        PageSize::Page2M);
    }
    if (spec.rfind("config:", 0) == 0) {
        try {
            return MosaicLayout::fromConfigString(pool_size,
                                                  spec.substr(7));
        } catch (const std::exception &e) {
            return parseError(std::string("bad layout config: ") +
                              e.what());
        }
    }
    return parseError("unknown layout spec: " + spec);
}

int
runMain(int argc, char **argv)
{
    using namespace mosaic;
    auto args = cli::parseArgs(argc, argv);

    if (args.has("list")) {
        std::printf("workloads:\n");
        for (const auto &label : workloads::workloadLabels())
            std::printf("  %s\n", label.c_str());
        std::printf("platforms:\n");
        for (const auto &spec : cpu::allPlatforms())
            std::printf("  %s\n", spec.name.c_str());
        return 0;
    }
    if (!args.has("workload") || !args.has("platform"))
        cli::usage(usageText);

    auto workload = workloads::makeWorkload(args.get("workload"));
    auto platform = cpu::platformByName(args.get("platform"));

    // One spec, or a comma list. "config:" strings embed commas in
    // their region list, so such a value is always a single spec.
    const std::string layout_arg = args.get("layout", "all-4KB");
    std::vector<std::string> specs;
    if (layout_arg.find("config:") != std::string::npos) {
        specs.push_back(layout_arg);
    } else {
        for (const auto &piece : splitString(layout_arg, ',')) {
            if (!trimString(piece).empty())
                specs.push_back(trimString(piece));
        }
    }
    if (specs.empty())
        cli::usage(usageText);

    std::vector<alloc::MosaicLayout> parsed;
    for (const auto &spec : specs) {
        parsed.push_back(cli::unwrapOrDie(
            "mosaic_run",
            parseLayout(spec, workload->primaryPoolSize())));
    }

    unsigned jobs = 0;
    if (args.has("jobs"))
        jobs = static_cast<unsigned>(cli::unwrapOrDie(
            "mosaic_run",
            cli::parseUnsignedValue("jobs", args.get("jobs"), 1,
                                    4096)));
    if (jobs == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        jobs = hw > 0 ? hw : 2;
    }
    jobs = std::min<unsigned>(
        jobs, static_cast<unsigned>(parsed.size()));

    ScopedTimer total_timer(metrics(), "run/total");
    auto trace = workload->generateTrace();

    // Each worker owns its simulator and metrics shard; the trace is
    // shared immutable. Results land in spec-order slots, so output is
    // identical for any --jobs value.
    std::vector<cpu::RunResult> results(parsed.size());
    std::vector<MetricsRegistry> shards(jobs);
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    for (unsigned worker = 0; worker < jobs; ++worker) {
        pool.emplace_back([&, worker] {
            SimContext context(shards[worker], faults(), 0, worker);
            while (true) {
                std::size_t index = next.fetch_add(1);
                if (index >= parsed.size())
                    return;
                results[index] = cpu::simulateRun(
                    platform, workload->makeAllocConfig(parsed[index]),
                    trace, context);
            }
        });
    }
    for (auto &thread : pool)
        thread.join();
    total_timer.stop();
    for (unsigned worker = 0; worker < jobs; ++worker) {
        metrics().mergeFrom(shards[worker]);
        metrics().addPhaseStats("run/worker/" + std::to_string(worker),
                                shards[worker].phase("replay/run"));
    }
    metrics().set("run/jobs", static_cast<double>(jobs));

    RunManifest manifest("mosaic_run");
    manifest.setConfig("workload", args.get("workload"));
    manifest.setConfig("platform", platform.name);
    if (specs.size() == 1)
        manifest.setConfig("layout", specs[0]);
    else
        manifest.setConfig("layouts", specs);
    manifest.setConfig("jobs", static_cast<std::uint64_t>(jobs));
    manifest.setConfig("records",
                       static_cast<std::uint64_t>(trace.size()));
    cli::writeManifestIfRequested(args, manifest);

    if (args.has("stats")) {
        for (std::size_t i = 0; i < specs.size(); ++i) {
            if (specs.size() > 1)
                std::printf("# layout %s\n", specs[i].c_str());
            std::printf("%s", cpu::formatStats(results[i]).c_str());
        }
        return 0;
    }
    if (args.has("csv") || specs.size() > 1) {
        std::printf("workload,platform,layout,R,H,M,C,instructions,"
                    "refs\n");
        for (std::size_t i = 0; i < specs.size(); ++i) {
            const auto &result = results[i];
            std::printf(
                "%s,%s,%s,%llu,%llu,%llu,%llu,%llu,%llu\n",
                args.get("workload").c_str(), platform.name.c_str(),
                specs[i].c_str(),
                static_cast<unsigned long long>(result.runtimeCycles),
                static_cast<unsigned long long>(result.tlbHitsL2),
                static_cast<unsigned long long>(result.tlbMisses),
                static_cast<unsigned long long>(result.walkCycles),
                static_cast<unsigned long long>(result.instructions),
                static_cast<unsigned long long>(result.memoryRefs));
        }
        return 0;
    }

    const auto &result = results[0];
    std::printf("%s on %s, layout %s\n", args.get("workload").c_str(),
                platform.name.c_str(), specs[0].c_str());
    TextTable table;
    table.addRow({"runtime cycles (R)",
                  std::to_string(result.runtimeCycles)});
    table.addRow({"L2-TLB hits (H)", std::to_string(result.tlbHitsL2)});
    table.addRow({"TLB misses (M)", std::to_string(result.tlbMisses)});
    table.addRow({"walk cycles (C)",
                  std::to_string(result.walkCycles)});
    table.addRow({"instructions", std::to_string(result.instructions)});
    table.addRow({"memory refs", std::to_string(result.memoryRefs)});
    table.addRow({"walker queue cycles",
                  std::to_string(result.walkerQueueCycles)});
    table.addRow({"IPC", formatDouble(
                             static_cast<double>(result.instructions) /
                                 static_cast<double>(
                                     result.runtimeCycles),
                             3)});
    std::printf("%s", table.render().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return mosaic::cli::runGuarded("mosaic_run",
                                   [&] { return runMain(argc, argv); });
}
