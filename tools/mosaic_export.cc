/**
 * @file
 * mosaic_export: write gnuplot-ready data and scripts for the paper's
 * figures from a campaign dataset CSV.
 *
 * Examples:
 *   mosaic_export --outdir plots
 *   mosaic_export --dataset mosaic_dataset.csv --outdir plots \
 *                 --curves spec06/mcf:SandyBridge
 */

#include <cstdio>
#include <sys/stat.h>

#include "experiments/campaign.hh"
#include "experiments/plot_export.hh"
#include "support/str.hh"
#include "tools/cli_common.hh"

namespace
{

constexpr const char *usageText =
    "usage: mosaic_export [--dataset FILE] [--outdir DIR]\n"
    "                     [--curves wl:platform,wl:platform,...]\n"
    "                     [--metrics-out FILE]\n"
    "defaults: dataset = mosaic_dataset.csv, outdir = plots,\n"
    "          curves = the paper's Figure 3/7/8/10/11 pairs\n";

int
exportMain(int argc, char **argv)
{
    using namespace mosaic;
    auto args = cli::parseArgs(argc, argv);
    if (args.has("help"))
        cli::usage(usageText);

    ScopedTimer total_timer(metrics(), "export/total");
    auto dataset = exp::Dataset::load(
        args.get("dataset", exp::defaultDatasetPath()));
    std::string outdir = args.get("outdir", "plots");
    mkdir(outdir.c_str(), 0755);

    std::vector<std::pair<std::string, std::string>> curves = {
        {"spec06/mcf", "SandyBridge"},          // Figure 3
        {"gapbs/sssp-twitter", "SandyBridge"},  // Figure 7
        {"spec06/omnetpp", "SandyBridge"},      // Figure 8
        {"gups/16GB", "SandyBridge"},           // Figure 10
        {"gapbs/pr-twitter", "SandyBridge"},    // Figure 11
    };
    if (args.has("curves")) {
        curves.clear();
        for (const auto &item : splitString(args.get("curves"), ',')) {
            auto parts = splitString(trimString(item), ':');
            if (parts.size() == 2)
                curves.emplace_back(parts[0], parts[1]);
        }
    }

    std::size_t files = 0;
    for (const auto &[workload, platform] : curves) {
        if (!dataset.has(platform, workload)) {
            std::fprintf(stderr, "skipping %s on %s: not in dataset\n",
                         workload.c_str(), platform.c_str());
            continue;
        }
        std::string stem = outdir + "/curve_" + platform + "_";
        for (char c : workload)
            stem.push_back(c == '/' ? '_' : c);
        auto written = exp::exportCurve(
            dataset, platform, workload,
            {"yaniv", "poly1", "mosmodel"}, stem);
        files += written.size();
    }

    files += exp::exportOverallErrors(dataset, outdir + "/fig2_errors")
                 .size();
    files += exp::exportErrorGrid(dataset, exp::ErrorKind::Max,
                                  outdir + "/fig5_max")
                 .size();
    files += exp::exportErrorGrid(dataset, exp::ErrorKind::GeoMean,
                                  outdir + "/fig6_geomean")
                 .size();

    total_timer.stop();

    RunManifest manifest("mosaic_export");
    manifest.setConfig("dataset",
                       args.get("dataset", exp::defaultDatasetPath()));
    manifest.setConfig("outdir", outdir);
    std::vector<std::string> curve_names;
    for (const auto &[workload, platform] : curves)
        curve_names.push_back(workload + ":" + platform);
    manifest.setConfig("curves", curve_names);
    manifest.setConfig("files_written",
                       static_cast<std::uint64_t>(files));
    cli::writeManifestIfRequested(args, manifest);

    std::printf("wrote %zu files under %s/ (render with: gnuplot "
                "%s/*.gp)\n",
                files, outdir.c_str(), outdir.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return mosaic::cli::runGuarded(
        "mosaic_export", [&] { return exportMain(argc, argv); });
}
