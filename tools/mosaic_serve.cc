/**
 * @file
 * mosaic_serve: the prediction-as-a-service daemon. Loads fitted
 * Mosmodel surfaces from a campaign dataset once, keeps them (and any
 * decoded traces) resident, and answers PREDICT queries over a
 * line-oriented protocol on a loopback TCP port or a Unix-domain
 * socket. Warm (platform, workload) pairs answer from the fitted
 * model in microseconds; unknown pairs fall back to an on-demand
 * fused simulation whose result is cached for every later query.
 *
 * SIGTERM/SIGINT drain in-flight queries, fold per-worker metric
 * shards, optionally write the --metrics-out manifest, and exit 0.
 */

#include <csignal>
#include <cstdio>
#include <ctime>

#include "sampling/sample_plan.hh"
#include "serve/model_registry.hh"
#include "serve/server.hh"
#include "support/logging.hh"
#include "tools/cli_common.hh"

using namespace mosaic;

namespace
{

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

const char *kUsage =
    "usage: mosaic_serve [--dataset FILE] [--socket PATH | --port N]\n"
    "                    [--jobs N] [--query-timeout SECONDS]\n"
    "                    [--trace-cache DIR] [--seed N] [--no-1gb]\n"
    "                    [--no-cold] [--cold-sampled]\n"
    "                    [--sample-interval N] [--sample-clusters K]\n"
    "                    [--sample-warmup N] [--metrics-out FILE]\n"
    "\n"
    "Serve runtime predictions from fitted Mosmodel surfaces.\n"
    "  --dataset FILE     campaign CSV to preload (repeatable via\n"
    "                     comma-separated paths)\n"
    "  --socket PATH      listen on a Unix-domain socket\n"
    "  --port N           listen on 127.0.0.1:N (default: 0 = pick)\n"
    "  --jobs N           worker threads (default 2)\n"
    "  --query-timeout S  per-query cooperative deadline (default 0 =\n"
    "                     unbounded; cold simulations honor it too)\n"
    "  --trace-cache DIR  columnar trace-store cache for cold paths\n"
    "  --seed N           layout-derivation seed (must match the\n"
    "                     campaign's; default 0x9a4d)\n"
    "  --no-1gb           skip the all-1GB lane on cold simulations\n"
    "  --no-cold          refuse cold simulations (serve only what\n"
    "                     was loaded)\n"
    "  --cold-sampled     answer cold pairs with interval-sampled\n"
    "                     replay (one representative segment set per\n"
    "                     trace) instead of the full fused grid —\n"
    "                     seconds instead of minutes per pair, at the\n"
    "                     sample plan's documented error bound\n"
    "  --sample-interval N  sampled-cold interval length in records\n"
    "                     (default 16384)\n"
    "  --sample-clusters K  sampled-cold cluster count (default 8)\n"
    "  --sample-warmup N  sampled-cold warmup prefix per segment in\n"
    "                     records (default 4096)\n"
    "  --metrics-out FILE write the JSON run manifest on shutdown\n";

} // namespace

int
main(int argc, char **argv)
{
    return cli::runGuarded("mosaic_serve", [&]() -> int {
        cli::Args args = cli::parseArgs(argc, argv);
        if (args.has("help"))
            cli::usage(kUsage);

        serve::ModelRegistry::Options regOptions;
        regOptions.traceCacheDir = args.get("trace-cache");
        regOptions.include1g = !args.has("no-1gb");
        regOptions.allowCold = !args.has("no-cold");
        regOptions.seed = cli::unwrapOrDie(
            "mosaic_serve",
            cli::unsignedOption(args, "seed", 0x9a4d));
        if (args.has("cold-sampled")) {
            regOptions.coldSampling.mode =
                sampling::SampleMode::Interval;
            regOptions.coldSampling.intervalRecords = cli::unwrapOrDie(
                "mosaic_serve",
                cli::unsignedOption(args, "sample-interval", 16384, 1,
                                    1ull << 32));
            regOptions.coldSampling.clusters =
                static_cast<std::uint32_t>(cli::unwrapOrDie(
                    "mosaic_serve",
                    cli::unsignedOption(args, "sample-clusters", 8, 1,
                                        1ull << 20)));
            regOptions.coldSampling.warmupRecords = cli::unwrapOrDie(
                "mosaic_serve",
                cli::unsignedOption(args, "sample-warmup", 4096, 0,
                                    1ull << 32));
        }

        serve::ModelRegistry registry(std::move(regOptions));
        std::size_t loadedPairs = 0;
        if (args.has("dataset")) {
            for (const std::string &path :
                 splitString(args.get("dataset"), ',')) {
                auto loaded = registry.loadDataset(trimString(path));
                if (!loaded.ok()) {
                    std::fprintf(stderr, "mosaic_serve: %s\n",
                                 loaded.error().str().c_str());
                    return 1;
                }
                loadedPairs += loaded.value();
            }
        }

        serve::ServerOptions options;
        options.socketPath = args.get("socket");
        options.port = static_cast<std::uint16_t>(cli::unwrapOrDie(
            "mosaic_serve",
            cli::unsignedOption(args, "port", 0, 0, 65535)));
        options.workers = static_cast<unsigned>(cli::unwrapOrDie(
            "mosaic_serve",
            cli::unsignedOption(args, "jobs", 2, 1, 256)));
        options.queryTimeoutSeconds = cli::unwrapOrDie(
            "mosaic_serve",
            cli::doubleOption(args, "query-timeout", 0.0, 0.0,
                              86400.0));
        options.seed = registry.options().seed;

        serve::Server server(registry, options);
        auto started = server.start();
        if (!started.ok()) {
            std::fprintf(stderr, "mosaic_serve: %s\n",
                         started.error().str().c_str());
            return 1;
        }

        // Loadgen and the CI smoke job parse this line to find the
        // ephemeral port; flush so a pipe sees it immediately.
        std::printf("mosaic_serve: listening on %s (%zu pairs "
                    "resident, %u workers)\n",
                    server.endpoint().c_str(), loadedPairs,
                    options.workers);
        std::fflush(stdout);

        struct sigaction action = {};
        action.sa_handler = onSignal;
        ::sigaction(SIGTERM, &action, nullptr);
        ::sigaction(SIGINT, &action, nullptr);

        while (!g_stop) {
            struct timespec nap = {0, 100 * 1000 * 1000};
            ::nanosleep(&nap, nullptr);
        }

        std::fprintf(stderr, "mosaic_serve: draining\n");
        server.stop();

        if (args.has("metrics-out")) {
            RunManifest manifest("mosaic_serve");
            manifest.setConfig("endpoint", server.endpoint());
            manifest.setConfig("jobs",
                               std::uint64_t{options.workers});
            manifest.setConfig("pairs_loaded",
                               std::uint64_t{loadedPairs});
            manifest.setConfig("allow_cold",
                               registry.options().allowCold);
            manifest.setConfig(
                "cold_sampled",
                registry.options().coldSampling.enabled());
            if (registry.options().coldSampling.enabled()) {
                manifest.setConfig(
                    "sample_tag",
                    registry.options().coldSampling.tag());
            }
            auto written = manifest.write(args.get("metrics-out"),
                                          server.centralMetrics());
            if (!written.ok()) {
                std::fprintf(stderr,
                             "warn: cannot write metrics manifest "
                             "%s: %s\n",
                             args.get("metrics-out").c_str(),
                             written.error().str().c_str());
            }
        }
        return 0;
    });
}
