/**
 * @file
 * Minimal argument parsing shared by the command-line tools.
 */

#ifndef MOSAIC_TOOLS_CLI_COMMON_HH
#define MOSAIC_TOOLS_CLI_COMMON_HH

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/error.hh"
#include "support/fault_injector.hh"
#include "support/metrics.hh"
#include "support/str.hh"

namespace mosaic::cli
{

/** Parsed "--key value" options plus positional arguments. */
struct Args
{
    std::map<std::string, std::string> options;
    std::vector<std::string> positional;

    bool
    has(const std::string &key) const
    {
        return options.count(key) != 0;
    }

    std::string
    get(const std::string &key, const std::string &fallback = "") const
    {
        auto it = options.find(key);
        return it == options.end() ? fallback : it->second;
    }
};

/**
 * Parse argv. "--key value" pairs become options; "--flag" followed by
 * another option (or nothing) becomes a true flag; everything else is
 * positional.
 */
inline Args
parseArgs(int argc, char **argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        std::string word = argv[i];
        if (word.rfind("--", 0) == 0) {
            std::string key = word.substr(2);
            if (i + 1 < argc &&
                std::string(argv[i + 1]).rfind("--", 0) != 0) {
                args.options[key] = argv[++i];
            } else {
                args.options[key] = "true";
            }
        } else {
            args.positional.push_back(word);
        }
    }
    return args;
}

/**
 * Strict numeric option parsing. The std::stoul/std::stod idiom the
 * tools used to rely on silently truncates trailing garbage
 * ("--jobs 4x" became 4) and wraps negatives into huge unsigned
 * values ("--shard -1/4" became 2^64-1). These helpers reject both
 * with a structured Numeric error naming the offending option and
 * enforce an inclusive [min, max] range at the parse boundary, so a
 * bad flag dies with a one-line diagnosis instead of a confusing
 * downstream failure.
 */
inline Result<std::uint64_t>
parseUnsignedValue(const std::string &option, const std::string &text,
                   std::uint64_t min = 0,
                   std::uint64_t max =
                       std::numeric_limits<std::uint64_t>::max())
{
    std::uint64_t value = 0;
    if (!parseUnsignedFull(trimString(text), value)) {
        return numericError("--" + option +
                            ": expected an unsigned integer, got \"" +
                            text + "\"");
    }
    if (value < min || value > max) {
        return numericError("--" + option + ": value " +
                            std::to_string(value) +
                            " out of range [" + std::to_string(min) +
                            ", " + std::to_string(max) + "]");
    }
    return value;
}

/** Strict full-match finite-double parse; same contract as above. */
inline Result<double>
parseDoubleValue(const std::string &option, const std::string &text,
                 double min = std::numeric_limits<double>::lowest(),
                 double max = std::numeric_limits<double>::max())
{
    const std::string trimmed = trimString(text);
    errno = 0;
    char *end = nullptr;
    const double value =
        trimmed.empty() ? 0.0 : std::strtod(trimmed.c_str(), &end);
    if (trimmed.empty() || end != trimmed.c_str() + trimmed.size() ||
        errno == ERANGE || !std::isfinite(value)) {
        return numericError("--" + option +
                            ": expected a finite number, got \"" +
                            text + "\"");
    }
    if (value < min || value > max) {
        return numericError("--" + option + ": value " +
                            formatDouble(value) + " out of range [" +
                            formatDouble(min) + ", " +
                            formatDouble(max) + "]");
    }
    return value;
}

/** Parse option @p key as an unsigned integer, or @p fallback. */
inline Result<std::uint64_t>
unsignedOption(const Args &args, const std::string &key,
               std::uint64_t fallback, std::uint64_t min = 0,
               std::uint64_t max =
                   std::numeric_limits<std::uint64_t>::max())
{
    if (!args.has(key))
        return fallback;
    return parseUnsignedValue(key, args.get(key), min, max);
}

/** Parse option @p key as a finite double, or @p fallback. */
inline Result<double>
doubleOption(const Args &args, const std::string &key, double fallback,
             double min = std::numeric_limits<double>::lowest(),
             double max = std::numeric_limits<double>::max())
{
    if (!args.has(key))
        return fallback;
    return parseDoubleValue(key, args.get(key), min, max);
}

/** Print usage text and exit. */
[[noreturn]] inline void
usage(const std::string &text)
{
    std::fprintf(stderr, "%s", text.c_str());
    std::exit(2);
}

/**
 * Tool entry-point guard: this is where recoverable library errors
 * that nothing handled become a clean exit. Arms the fault injector
 * from $MOSAIC_FAULTS first, so whole-binary fault drills work on
 * every tool.
 */
template <typename Fn>
int
runGuarded(const char *tool, Fn &&body)
{
    try {
        FaultInjector::instance().configureFromEnv();
        return body();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s: %s\n", tool, e.what());
        return 1;
    }
}

/**
 * Emit the JSON run manifest to --metrics-out FILE, when requested.
 * Every tool supports the flag; a failed manifest write warns but
 * never changes the tool's exit code (observability must not fail a
 * run that succeeded).
 */
inline void
writeManifestIfRequested(const Args &args, const RunManifest &manifest)
{
    if (!args.has("metrics-out"))
        return;
    const std::string path = args.get("metrics-out");
    auto written = manifest.write(path, metrics());
    if (!written.ok()) {
        std::fprintf(stderr,
                     "warn: cannot write metrics manifest %s: %s\n",
                     path.c_str(), written.error().str().c_str());
    }
}

/** Unwrap a Result at the CLI boundary: print the error and exit. */
template <typename T>
T
unwrapOrDie(const char *tool, Result<T> result)
{
    if (!result.ok()) {
        std::fprintf(stderr, "%s: %s\n", tool,
                     result.error().str().c_str());
        std::exit(2);
    }
    return std::move(result).okOrThrow();
}

} // namespace mosaic::cli

#endif // MOSAIC_TOOLS_CLI_COMMON_HH
