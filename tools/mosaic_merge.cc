/**
 * @file
 * mosaic_merge: validate and splice sharded campaign CSVs
 * (mosaic_campaign --shard i/N) into the canonical dataset.
 *
 * Each shard CSV carries an embedded manifest (cell counts, a config
 * hash of the campaign grid, a CRC32 over its rows, and the canonical
 * per-pair layout order). The merge verifies every shard — same
 * campaign, disjoint complete cells, intact rows — and emits a CSV
 * byte-identical to what a single unsharded campaign process writes.
 *
 * Degraded mode (--allow-missing-shards) tolerates absent, unreadable,
 * or incomplete shards: the cells that can be recovered are merged and
 * every missing cell is reported explicitly, so one lost shard costs
 * its own cells, never the whole campaign.
 *
 * Examples:
 *   mosaic_merge --out merged.csv shard0.csv shard1.csv
 *   mosaic_merge --out partial.csv --allow-missing-shards shard0.csv
 *
 * Exit codes: 0 merged completely, 1 validation/read failure,
 * 2 usage error, 3 degraded merge wrote a partial dataset (some
 * cells missing).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "experiments/shard.hh"
#include "support/io_util.hh"
#include "tools/cli_common.hh"

namespace
{

constexpr const char *usageText =
    "usage: mosaic_merge --out FILE [--allow-missing-shards]\n"
    "                    [--metrics-out FILE] shard.csv [shard.csv...]\n"
    "Validates each shard CSV's embedded manifest (cell count, config\n"
    "hash, row CRC, layout order) and splices the shards into the\n"
    "canonical dataset CSV — byte-identical to an unsharded campaign.\n"
    "--allow-missing-shards merges whatever shards are valid and\n"
    "reports every missing cell instead of failing (exit 3 when any\n"
    "cell is missing).\n";

int
mergeMain(int argc, char **argv)
{
    using namespace mosaic;
    auto args = cli::parseArgs(argc, argv);
    const bool allow_missing = args.has("allow-missing-shards");
    // parseArgs greedily attaches the next bare word to any "--flag";
    // for this boolean flag that word is really the first shard path,
    // so hand it back to the positional list.
    if (std::string v = args.get("allow-missing-shards", "true");
        v != "true")
        args.positional.insert(args.positional.begin(), v);
    if (args.has("help") || !args.has("out") || args.positional.empty())
        cli::usage(usageText);
    const std::string out = args.get("out");

    std::vector<exp::ShardFile> shards;
    std::size_t shards_skipped = 0;
    for (const std::string &path : args.positional) {
        auto shard = exp::readShardFile(path);
        if (shard.ok()) {
            shards.push_back(std::move(shard).okOrThrow());
            continue;
        }
        if (!allow_missing) {
            std::fprintf(stderr, "mosaic_merge: %s\n",
                         shard.error().str().c_str());
            return 1;
        }
        // Degraded: one bad shard costs its own cells only.
        ++shards_skipped;
        metrics().add("merge/shards_skipped");
        std::fprintf(stderr,
                     "mosaic_merge: skipping shard %s (%s)\n",
                     path.c_str(), shard.error().str().c_str());
    }
    if (shards.empty()) {
        std::fprintf(stderr,
                     "mosaic_merge: no usable shard CSVs given\n");
        return 1;
    }

    auto merged = exp::mergeShards(shards, allow_missing);
    if (!merged.ok()) {
        std::fprintf(stderr, "mosaic_merge: %s\n",
                     merged.error().str().c_str());
        return 1;
    }
    const exp::MergeOutcome &outcome = merged.value();

    if (auto written = writeFileAtomic(out, outcome.csv);
        !written.ok()) {
        std::fprintf(stderr, "mosaic_merge: %s\n",
                     written.error().str().c_str());
        return 1;
    }

    metrics().add("merge/rows_merged", outcome.rowsMerged);
    metrics().add("merge/cells_missing", outcome.missing.size());

    RunManifest manifest("mosaic_merge");
    manifest.setConfig("out", out);
    manifest.setConfig("shards", args.positional);
    manifest.setConfig("allow_missing_shards", allow_missing);
    for (const auto &cell : outcome.missing) {
        manifest.addFailure(cell.platform + "/" + cell.workload + "/" +
                                cell.layout,
                            "cell missing from every merged shard");
    }
    cli::writeManifestIfRequested(args, manifest);

    std::printf("merged %zu row(s) from %zu shard(s) into %s\n",
                outcome.rowsMerged, shards.size(), out.c_str());
    if (!outcome.missing.empty()) {
        std::printf("missing %zu cell(s)", outcome.missing.size());
        if (shards_skipped > 0)
            std::printf(" (%zu shard(s) skipped)", shards_skipped);
        std::printf(":\n");
        for (const auto &cell : outcome.missing) {
            std::printf("  %s/%s/%s\n", cell.platform.c_str(),
                        cell.workload.c_str(), cell.layout.c_str());
        }
        return 3;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return mosaic::cli::runGuarded(
        "mosaic_merge", [&] { return mergeMain(argc, argv); });
}
