#!/usr/bin/env python3
"""Perf-regression gate over replay_bench and serve_loadgen JSON.

Dispatches on the input schema: "mosaic-replay-bench/*" files gate
replay throughput (below), "mosaic-serve-bench/*" files gate the serve
daemon's predictions/sec per client stage (--tolerance applies, each
stage matched by client count) and require zero protocol errors in
the fresh run. Baseline and fresh must carry the same schema family.

Compares a freshly measured BENCH_replay.json against the committed
baseline and fails (exit 1) when throughput regressed beyond the
tolerance. Checked, all one-sided (only slowdowns fail, speedups pass):

  * aggregate.records_per_sec       -- the sequential per-cell sweep
  * fused.records_per_sec           -- the fused multi-layout pass
  * per-cell records_per_sec        -- each (platform, layout) cell,
                                       at a wider tolerance (cells are
                                       noisier than the aggregate)
  * fused.speedup_vs_sequential     -- absolute sanity floor: the fused
                                       engine must never be materially
                                       slower than sequential replay
  * paged.records_per_sec           -- the demand-paging replay stage
                                       (bounded frame pool); skipped
                                       with a note when the committed
                                       baseline predates the paged
                                       schema (/4). The unbounded hot
                                       path stays guarded by the
                                       aggregate check regardless —
                                       the paged stage is timed
                                       outside the sequential sweep.
  * sampled.effective_records_per_sec -- the interval-sampled replay
                                       stage (full-trace records
                                       covered per second of partial
                                       replay); skipped with a note
                                       when the committed baseline
                                       predates the sampled schema
                                       (/5), like the paged stage.
  * aggregate.host_cycles_per_record -- nominal host cycles the kernel
                                       spends per trace record
                                       (schema /3; TSC-calibrated).
                                       Two one-sided checks: no >20%
                                       growth over the baseline, and
                                       an absolute ceiling
                                       (--cycles-ceiling, default 100)
                                       that engages once the committed
                                       baseline itself is under it —
                                       so the <100-cycles ratchet
                                       cannot silently regress. A
                                       value of 0 means the bench
                                       could not calibrate a clock
                                       (non-x86 host without
                                       MOSAIC_HOST_GHZ); cycle checks
                                       are skipped, throughput checks
                                       still run.

A baseline that predates a schema bump (missing aggregate/fused
blocks or run-entry keys) skips the affected checks with a warning
instead of crashing; the fresh file, produced by the current bench
binary, is still required to carry the aggregate.

The default tolerance is deliberately wide (20%) because CI runners
are shared and noisy; the bench itself takes the min over repetitions
after a calibration rep, which removes most cold-start noise. The
fused speedup floor defaults to 0.9: measured honestly, fused replay
amortizes only trace decode (a few percent of replay time), so its
sustainable guarantee is "at least as fast as sequential minus noise",
not a multiple (see DESIGN.md "Fused multi-layout replay").

Usage:
  check_bench_regression.py --baseline BENCH_replay.json \
      --fresh fresh.json [--tolerance 0.20] [--cell-tolerance 0.30] \
      [--fused-floor 0.90]
  check_bench_regression.py --self-test

--self-test runs the gate against seeded synthetic bench documents
(no files needed) and verifies that (a) an unregressed pair passes,
(b) a deliberate sampled-throughput regression is red-flagged, and
(c) a pre-/5 baseline skips the sampled check instead of crashing.
It exits 0 only when all three behave.

Exit codes: 0 no regression, 1 regression detected, 2 bad input.
"""

import argparse
import json
import sys


SCHEMA_FAMILIES = ("mosaic-replay-bench/", "mosaic-serve-bench/")


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        sys.exit(f"error: cannot load {path}: {exc}")
    schema = str(doc.get("schema", ""))
    if not any(schema.startswith(fam) for fam in SCHEMA_FAMILIES):
        sys.exit(f"error: {path}: unexpected schema {schema!r}")
    return doc


def schema_family(doc):
    schema = str(doc.get("schema", ""))
    for family in SCHEMA_FAMILIES:
        if schema.startswith(family):
            return family
    return None


def warn(message):
    print(f"warning: {message}", file=sys.stderr)


def cells(doc, path):
    """Per-cell throughput map, tolerating schema drift.

    A baseline committed before a schema bump may hold run entries
    without the keys this gate reads; those entries are skipped with a
    warning instead of KeyError-ing the whole gate (the remaining
    cells still get checked).
    """
    out = {}
    skipped = 0
    for run in doc.get("runs", []):
        platform = run.get("platform")
        layout = run.get("layout")
        rate = run.get("records_per_sec")
        if platform is None or layout is None or rate is None:
            skipped += 1
            continue
        out[(platform, layout)] = rate
    if skipped:
        warn(f"{path}: skipped {skipped} run entr"
             f"{'y' if skipped == 1 else 'ies'} missing "
             "platform/layout/records_per_sec (older schema?)")
    return out


class Gate:
    def __init__(self):
        self.failures = []
        self.checked = 0

    def check(self, label, fresh, floor, detail=""):
        self.checked += 1
        verdict = "ok" if fresh >= floor else "REGRESSION"
        print(f"  {label}: {fresh:,.0f} vs floor {floor:,.0f} "
              f"{detail}-> {verdict}")
        if fresh < floor:
            self.failures.append(label)

    def check_max(self, label, fresh, ceiling, detail=""):
        """Lower-is-better metric (e.g. host cycles/record)."""
        self.checked += 1
        verdict = "ok" if fresh <= ceiling else "REGRESSION"
        print(f"  {label}: {fresh:,.1f} vs ceiling {ceiling:,.1f} "
              f"{detail}-> {verdict}")
        if fresh > ceiling:
            self.failures.append(label)


def gate_serve(baseline, fresh, args, gate):
    """Serve-daemon gate: per-stage predictions/sec floors.

    Stages are matched by client count; a baseline stage missing from
    the fresh run fails hard (coverage must not silently shrink). Any
    protocol errors in the fresh run fail the gate outright — a
    half-broken daemon can post great throughput on the requests that
    survive.
    """
    def stages(doc, path):
        out = {}
        for stage in doc.get("stages", []):
            clients = stage.get("clients")
            if clients is None:
                warn(f"{path}: stage without a client count skipped")
                continue
            out[clients] = stage
        return out

    base_stages = stages(baseline, args.baseline)
    fresh_stages = stages(fresh, args.fresh)
    if not fresh_stages:
        sys.exit("error: fresh serve bench carries no stages")
    missing = sorted(set(base_stages) - set(fresh_stages))
    if missing:
        sys.exit(f"error: fresh run is missing client stages: "
                 f"{missing}")

    for clients in sorted(base_stages):
        base_rate = base_stages[clients].get("predictions_per_sec")
        fresh_stage = fresh_stages[clients]
        fresh_rate = fresh_stage.get("predictions_per_sec")
        if base_rate is None or fresh_rate is None:
            warn(f"stage clients={clients}: no predictions_per_sec; "
                 "skipped")
            continue
        gate.check(f"clients={clients} predictions/sec", fresh_rate,
                   base_rate * (1.0 - args.tolerance),
                   f"(baseline {base_rate:,.0f}, "
                   f"-{args.tolerance:.0%}) ")
        errors = fresh_stage.get("errors", 0)
        gate.checked += 1
        verdict = "ok" if not errors else "REGRESSION"
        print(f"  clients={clients} protocol errors: {errors} "
              f"-> {verdict}")
        if errors:
            gate.failures.append(f"clients={clients} errors")


def gate_replay(baseline, fresh, args, gate):
    """Replay-bench gate: aggregate/fused/paged/sampled/cell floors."""

    def describe(path, doc):
        records = doc.get("records")
        records_text = (f"{records:,} records"
                        if isinstance(records, (int, float))
                        else "record count unknown")
        print(f"{path} ({doc.get('schema')}, {records_text})")

    print("baseline: ", end="")
    describe(args.baseline, baseline)
    print("fresh:    ", end="")
    describe(args.fresh, fresh)

    base_agg = baseline.get("aggregate", {}).get("records_per_sec")
    fresh_agg = fresh.get("aggregate", {}).get("records_per_sec")
    if not fresh_agg:
        # The fresh file comes from the current bench binary; if even
        # it lacks the aggregate, the measurement itself is broken.
        sys.exit("error: fresh file lacks aggregate.records_per_sec")
    if base_agg:
        gate.check("aggregate records/sec", fresh_agg,
                   base_agg * (1.0 - args.tolerance),
                   f"(baseline {base_agg:,.0f}, "
                   f"-{args.tolerance:.0%}) ")
    else:
        # A baseline from before the schema carried the aggregate:
        # skip the check rather than fail the gate on old data.
        warn(f"{args.baseline}: no aggregate.records_per_sec "
             "(pre-aggregate schema?); aggregate check skipped")

    base_cycles = baseline.get("aggregate", {}).get(
        "host_cycles_per_record")
    fresh_cycles = fresh.get("aggregate", {}).get(
        "host_cycles_per_record")
    if not fresh_cycles:
        # 0 or absent: the bench ran without a calibratable clock
        # (non-x86 host, no MOSAIC_HOST_GHZ). Throughput checks above
        # still gate the run.
        warn("fresh run carries no calibrated host_cycles_per_record; "
             "cycle checks skipped")
    elif base_cycles:
        gate.check_max("aggregate host cycles/record", fresh_cycles,
                       base_cycles * (1.0 + args.tolerance),
                       f"(baseline {base_cycles:,.1f}, "
                       f"+{args.tolerance:.0%}) ")
        if base_cycles <= args.cycles_ceiling:
            # The ratchet: once a committed baseline gets under the
            # ceiling, no future PR may climb back above it, even if
            # the relative tolerance would allow it.
            gate.check_max("host cycles/record ceiling", fresh_cycles,
                           args.cycles_ceiling)
    else:
        warn(f"{args.baseline}: no aggregate.host_cycles_per_record "
             "(pre-/3 schema?); cycle checks skipped")

    base_fused = baseline.get("fused", {}).get("records_per_sec")
    fresh_fused = fresh.get("fused", {}).get("records_per_sec")
    if base_fused and fresh_fused:
        gate.check("fused records/sec", fresh_fused,
                   base_fused * (1.0 - args.tolerance),
                   f"(baseline {base_fused:,.0f}, "
                   f"-{args.tolerance:.0%}) ")
    elif fresh_fused and not base_fused:
        print("  fused records/sec: no baseline (pre-fused schema); "
              "skipped")

    fresh_speedup = fresh.get("fused", {}).get("speedup_vs_sequential")
    if fresh_speedup is not None:
        gate.checked += 1
        verdict = ("ok" if fresh_speedup >= args.fused_floor
                   else "REGRESSION")
        print(f"  fused speedup vs sequential: {fresh_speedup:.3f} "
              f"(floor {args.fused_floor:.2f}) -> {verdict}")
        if fresh_speedup < args.fused_floor:
            gate.failures.append("fused speedup floor")

    base_paged = baseline.get("paged", {}).get("records_per_sec")
    fresh_paged = fresh.get("paged", {}).get("records_per_sec")
    if base_paged and fresh_paged:
        gate.check("paged records/sec", fresh_paged,
                   base_paged * (1.0 - args.tolerance),
                   f"(baseline {base_paged:,.0f}, "
                   f"-{args.tolerance:.0%}) ")
    elif fresh_paged and not base_paged:
        # The demand-paging stage landed after this baseline was
        # committed; the gate engages once the baseline is refreshed.
        # The unbounded hot path is still guarded above — the paged
        # stage runs outside the sequential sweep by design.
        print("  paged records/sec: no baseline (pre-paged schema); "
              "skipped")

    base_sampled = baseline.get("sampled", {}).get(
        "effective_records_per_sec")
    fresh_sampled = fresh.get("sampled", {}).get(
        "effective_records_per_sec")
    if base_sampled and fresh_sampled:
        gate.check("sampled effective records/sec", fresh_sampled,
                   base_sampled * (1.0 - args.tolerance),
                   f"(baseline {base_sampled:,.0f}, "
                   f"-{args.tolerance:.0%}) ")
    elif fresh_sampled and not base_sampled:
        # The interval-sampling stage landed in schema /5; a baseline
        # committed before it skips the check (engaging once the
        # baseline is refreshed) exactly like the paged stage above.
        print("  sampled effective records/sec: no baseline "
              "(pre-sampled schema); skipped")

    base_cells = cells(baseline, args.baseline)
    fresh_cells = cells(fresh, args.fresh)
    missing = sorted(set(base_cells) - set(fresh_cells))
    if missing:
        sys.exit(f"error: fresh run is missing cells: {missing}")
    for key in sorted(base_cells):
        platform, layout = key
        gate.check(f"cell {platform}/{layout}", fresh_cells[key],
                   base_cells[key] * (1.0 - args.cell_tolerance))


def run_gate(baseline, fresh, args):
    """Dispatch on schema family; returns the populated Gate."""
    gate = Gate()
    if schema_family(baseline) != schema_family(fresh):
        sys.exit("error: baseline and fresh schemas disagree "
                 f"({baseline.get('schema')!r} vs "
                 f"{fresh.get('schema')!r})")
    if schema_family(fresh) == "mosaic-serve-bench/":
        print(f"baseline: {args.baseline} ({baseline.get('schema')})")
        print(f"fresh:    {args.fresh} ({fresh.get('schema')})")
        gate_serve(baseline, fresh, args, gate)
    else:
        gate_replay(baseline, fresh, args, gate)
    return gate


def self_test(args):
    """Gate-the-gate: seeded synthetic documents prove the sampled
    check fires on a real regression and stays quiet otherwise."""
    import random

    rng = random.Random(0x5A3D11E5)
    # gate_replay labels its warnings with the input paths.
    args.baseline = "<self-test baseline>"
    args.fresh = "<self-test fresh>"

    def synth_doc(schema, sampled_rate):
        base_rate = 18e6 + rng.uniform(-1e5, 1e5)
        doc = {
            "schema": schema,
            "records": 2000000,
            "aggregate": {
                "wall_seconds": 1.3,
                "records_per_sec": base_rate,
                # 0 = "no calibrated clock": cycle checks skip, which
                # keeps the self-test host-independent.
                "host_cycles_per_record": 0,
            },
            "runs": [
                {"platform": "SandyBridge", "layout": "all4k",
                 "records_per_sec": base_rate * 0.7},
                {"platform": "SandyBridge", "layout": "all2m",
                 "records_per_sec": base_rate * 1.3},
            ],
        }
        if sampled_rate is not None:
            doc["sampled"] = {
                "interval_records": 16384,
                "clusters": 8,
                "warmup_records": 4096,
                "replay_fraction": 0.068,
                "wall_seconds": 0.08,
                "effective_records_per_sec": sampled_rate,
            }
        return doc

    failures = []

    def expect(name, gate, want_fail, want_label=None):
        flagged = [f for f in gate.failures
                   if want_label is None or want_label in f]
        ok = bool(flagged) == want_fail
        print(f"self-test [{name}]: "
              f"{'ok' if ok else 'WRONG VERDICT'} "
              f"(failures: {gate.failures or 'none'})")
        if not ok:
            failures.append(name)

    sampled_base = 70e6 + rng.uniform(-1e5, 1e5)

    # (a) An unregressed fresh run passes.
    print("-- self-test: healthy run --")
    base = synth_doc("mosaic-replay-bench/5", sampled_base)
    good = synth_doc("mosaic-replay-bench/5",
                     sampled_base * (1.0 - args.tolerance / 2))
    expect("healthy", run_gate(base, good, args), want_fail=False)

    # (b) A seeded sampled-throughput regression (half the baseline
    # rate, far past any sane tolerance) is red-flagged by name.
    print("-- self-test: sampled regression --")
    slow = synth_doc("mosaic-replay-bench/5", sampled_base * 0.5)
    expect("sampled regression", run_gate(base, slow, args),
           want_fail=True, want_label="sampled")

    # (c) A pre-bump baseline (schema /4, no sampled block) skips the
    # sampled check instead of crashing or failing.
    print("-- self-test: pre-/5 baseline --")
    old = synth_doc("mosaic-replay-bench/4", None)
    expect("pre-bump baseline", run_gate(old, good, args),
           want_fail=False)

    if failures:
        print(f"\nSELF-TEST FAIL: {', '.join(failures)}")
        return 1
    print("\nSELF-TEST OK: the sampled gate fires when and only "
          "when it should")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="replay_bench / serve_loadgen perf-regression gate")
    parser.add_argument("--baseline",
                        help="committed BENCH_replay.json")
    parser.add_argument("--fresh",
                        help="freshly measured replay_bench JSON")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed aggregate slowdown (default 0.20)")
    parser.add_argument("--cell-tolerance", type=float, default=0.30,
                        help="allowed per-cell slowdown (default 0.30)")
    parser.add_argument("--fused-floor", type=float, default=0.90,
                        help="minimum fused speedup_vs_sequential "
                             "(default 0.90)")
    parser.add_argument("--cycles-ceiling", type=float, default=100.0,
                        help="absolute host_cycles_per_record ceiling, "
                             "enforced once the baseline is under it "
                             "(default 100)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate itself against seeded "
                             "synthetic documents, then exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test(args)
    if not args.baseline or not args.fresh:
        parser.error("--baseline and --fresh are required unless "
                     "--self-test is given")

    gate = run_gate(load(args.baseline), load(args.fresh), args)
    if gate.failures:
        print(f"\nFAIL: {len(gate.failures)}/{gate.checked} checks "
              f"regressed: {', '.join(gate.failures)}")
        return 1
    print(f"\nOK: {gate.checked} checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
