/**
 * @file
 * mosaic_fit: fit runtime models against a dataset CSV and report
 * errors — the analysis half of the methodology, scriptable.
 *
 * Examples:
 *   mosaic_fit --dataset mosaic_dataset.csv
 *   mosaic_fit --dataset mosaic_dataset.csv --workload spec06/mcf \
 *              --platform SandyBridge --models yaniv,mosmodel --describe
 */

#include <cstdio>

#include "experiments/campaign.hh"
#include "experiments/report.hh"
#include "models/evaluation.hh"
#include "support/str.hh"
#include "tools/cli_common.hh"

namespace
{

constexpr const char *usageText =
    "usage: mosaic_fit [--dataset FILE] [--workload LABEL]\n"
    "                  [--platform NAME] [--models a,b,...]\n"
    "                  [--describe] [--metrics-out FILE]\n"
    "defaults: dataset = mosaic_dataset.csv, all pairs, all 9 models\n"
    "--metrics-out writes a JSON run manifest (Lasso sweep counters,\n"
    "fit timings, fallback-ladder depth) after the run.\n";

int
fitMain(int argc, char **argv)
{
    using namespace mosaic;
    auto args = cli::parseArgs(argc, argv);
    if (args.has("help"))
        cli::usage(usageText);

    ScopedTimer total_timer(metrics(), "fit/total");
    auto dataset =
        exp::Dataset::load(args.get("dataset", exp::defaultDatasetPath()));

    std::vector<std::string> models = exp::paperModelOrder();
    if (args.has("models")) {
        models.clear();
        for (const auto &name : splitString(args.get("models"), ','))
            if (!trimString(name).empty())
                models.push_back(trimString(name));
    }

    TextTable table;
    std::vector<std::string> header = {"platform", "workload"};
    header.insert(header.end(), models.begin(), models.end());
    table.setHeader(header);

    for (const auto &platform : dataset.platforms()) {
        if (args.has("platform") && platform != args.get("platform"))
            continue;
        for (const auto &workload : dataset.workloads()) {
            if (args.has("workload") && workload != args.get("workload"))
                continue;
            if (!dataset.has(platform, workload))
                continue;
            auto set = dataset.sampleSet(platform, workload);
            if (!set.tlbSensitive())
                continue;
            std::vector<std::string> cells = {platform, workload};
            for (const auto &name : models) {
                auto model = exp::makeModelByName(name);
                auto errors = models::evaluateModel(*model, set);
                cells.push_back(formatPercent(errors.maxError));
                if (args.has("describe")) {
                    std::printf("%s %s %s: %s\n", platform.c_str(),
                                workload.c_str(), name.c_str(),
                                model->describe().c_str());
                }
            }
            table.addRow(cells);
        }
    }
    total_timer.stop();

    RunManifest manifest("mosaic_fit");
    manifest.setConfig("dataset",
                       args.get("dataset", exp::defaultDatasetPath()));
    manifest.setConfig("models", models);
    if (args.has("platform"))
        manifest.setConfig("platform", args.get("platform"));
    if (args.has("workload"))
        manifest.setConfig("workload", args.get("workload"));
    manifest.setConfig("pairs_fitted",
                       static_cast<std::uint64_t>(table.numRows()));
    cli::writeManifestIfRequested(args, manifest);

    std::printf("%s", table.render().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return mosaic::cli::runGuarded("mosaic_fit",
                                   [&] { return fitMain(argc, argv); });
}
