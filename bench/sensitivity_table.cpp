/**
 * @file
 * TLB-sensitivity survey: the Section VI-A selection criterion
 * ("performance varies by at least 5% when backed with 1GB pages")
 * evaluated for every workload on every platform, with the paper's
 * observed trend — sensitivity shrinks as TLBs grow across
 * generations (Broadwell < Haswell < SandyBridge).
 */

#include "bench_common.hh"

int
main()
{
    using namespace mosaic;
    bench::banner("Workload selection",
                  "TLB sensitivity per workload and platform");

    auto data = bench::dataset();

    TextTable table;
    std::vector<std::string> header = {"workload"};
    auto platforms = data.platforms();
    header.insert(header.end(), platforms.begin(), platforms.end());
    table.setHeader(header);

    int trend_hits = 0, trend_total = 0;
    for (const auto &workload : data.workloads()) {
        std::vector<std::string> cells = {workload};
        double broadwell = -1.0, sandybridge = -1.0;
        for (const auto &platform : platforms) {
            if (!data.has(platform, workload)) {
                cells.push_back("-");
                continue;
            }
            auto set = data.sampleSet(platform, workload);
            double sensitivity =
                (set.all4k.r - set.all1g.r) / set.all4k.r;
            cells.push_back(bench::pct(sensitivity) +
                            (set.tlbSensitive() ? "" : " (drop)"));
            if (platform == "Broadwell")
                broadwell = sensitivity;
            if (platform == "SandyBridge")
                sandybridge = sensitivity;
        }
        if (broadwell >= 0 && sandybridge >= 0) {
            ++trend_total;
            trend_hits += sandybridge > broadwell;
        }
        table.addRow(cells);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("TLB-growth trend (SandyBridge more sensitive than "
                "Broadwell): %d of %d workloads\n",
                trend_hits, trend_total);
    std::printf("paper: bigger TLBs shrink sensitivity; gapbs/bfs-road "
                "even drops below the 5%% bar on their Broadwell.\n");
    return 0;
}
