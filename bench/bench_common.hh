/**
 * @file
 * Shared helpers for the figure/table reproduction binaries.
 *
 * Every binary loads the shared campaign dataset (running the full
 * simulation campaign once if no cache exists — subsequent binaries
 * reuse the CSV) and prints paper-style rows. Absolute numbers differ
 * from the paper (the platform is a simulator, not the authors'
 * Xeons); the *shape* — which models fail, by how much, where — is the
 * reproduction target. See EXPERIMENTS.md.
 */

#ifndef MOSAIC_BENCH_COMMON_HH
#define MOSAIC_BENCH_COMMON_HH

#include <cstdio>
#include <string>

#include "experiments/campaign.hh"
#include "experiments/report.hh"
#include "support/str.hh"

namespace mosaic::bench
{

/** Print a banner naming the paper artifact being reproduced. */
inline void
banner(const std::string &artifact, const std::string &caption)
{
    std::printf("=============================================="
                "==================\n");
    std::printf("%s — %s\n", artifact.c_str(), caption.c_str());
    std::printf("(simulated platforms; compare shapes, not absolute "
                "numbers)\n");
    std::printf("=============================================="
                "==================\n\n");
}

/** Load (or build) the shared campaign dataset. */
inline exp::Dataset
dataset()
{
    return exp::loadOrRunDefaultCampaign();
}

/** Percent formatting used across all tables. */
inline std::string
pct(double fraction, int precision = 1)
{
    return formatPercent(fraction, precision);
}

} // namespace mosaic::bench

#endif // MOSAIC_BENCH_COMMON_HH
