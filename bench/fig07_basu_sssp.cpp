/**
 * @file
 * Figure 7: the Basu model on gapbs/sssp-twitter (SandyBridge). The
 * paper finds the model — believed pessimistic by its authors —
 * actually *optimistic* near the zero-overhead operating point,
 * underpredicting runtime by up to 42%.
 */

#include "bench_common.hh"

#include <algorithm>
#include <cmath>

int
main()
{
    using namespace mosaic;
    bench::banner("Figure 7",
                  "Basu model vs measured runtimes, gapbs/sssp-twitter "
                  "on SandyBridge");

    auto data = bench::dataset();
    auto curve = exp::computeCurve(data, "SandyBridge",
                                   "gapbs/sssp-twitter", {"basu"});

    TextTable table;
    table.setHeader({"layout", "TLB misses M", "measured R",
                     "basu model", "signed error"});
    double worst_under = 0.0; // optimistic = prediction below measured
    for (const auto &point : curve) {
        double predicted = point.predicted.at("basu");
        double signed_err = (predicted - point.measured) /
                            point.measured;
        worst_under = std::min(worst_under, signed_err);
        table.addRow({point.layout, formatDouble(point.m / 1e3, 1),
                      formatDouble(point.measured / 1e6, 2),
                      formatDouble(predicted / 1e6, 2),
                      bench::pct(signed_err)});
    }
    std::printf("%s\n(M in thousands, R in millions of cycles)\n\n",
                table.render().c_str());
    std::printf("most optimistic Basu prediction (this workload): %s "
                "below the measured runtime\n\n",
                bench::pct(-worst_under).c_str());

    // The paper's point is the *phenomenon* — a model its authors
    // believed conservative is actually optimistic near the
    // zero-overhead operating point. Which pair shows it most depends
    // on the platform substrate; scan the whole grid.
    double grid_worst = 0.0;
    std::string worst_pair;
    for (const auto &platform : data.platforms()) {
        for (const auto &workload : data.workloads()) {
            if (!data.has(platform, workload))
                continue;
            auto set = data.sampleSet(platform, workload);
            if (!set.tlbSensitive())
                continue;
            auto basu = exp::makeModelByName("basu");
            basu->fit(set);
            for (const auto &sample : set.samples) {
                double signed_err =
                    (basu->predict(sample) - sample.r) / sample.r;
                if (signed_err < grid_worst) {
                    grid_worst = signed_err;
                    worst_pair = workload + " on " + platform + " (" +
                                 sample.layoutName + ")";
                }
            }
        }
    }
    std::printf("most optimistic Basu prediction anywhere: %s below "
                "measured, for %s\n",
                bench::pct(-grid_worst).c_str(), worst_pair.c_str());
    std::printf("paper: Basu predicts runtimes up to 42%% lower than "
                "measured (gapbs/sssp-twitter on their "
                "SandyBridge).\n");
    return 0;
}
