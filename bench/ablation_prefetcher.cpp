/**
 * @file
 * Ablation: runtime models under a stronger memory system (an L2
 * stream prefetcher).
 *
 * The paper's models abstract everything outside the virtual-memory
 * subsystem into the fitted coefficients (Section IV: a model for
 * processor P says nothing about a P̄ whose *other* components
 * changed). This ablation makes that concrete: adding a prefetcher
 * shifts runtimes — most for streaming workloads — and a model fitted
 * on the no-prefetcher machine mispredicts the prefetching one far
 * beyond its native error.
 */

#include "bench_common.hh"

#include "cpu/system.hh"
#include "layouts/heuristics.hh"
#include "models/evaluation.hh"
#include "models/mosmodel.hh"
#include "stats/metrics.hh"
#include "trace/miss_profile.hh"
#include "workloads/graph500.hh"

namespace
{

using namespace mosaic;

/** Run one workload's full layout campaign on one platform variant. */
models::SampleSet
runCampaign(const workloads::Workload &workload,
            const cpu::PlatformSpec &platform,
            const trace::MemoryTrace &trace)
{
    trace::MissProfile profile(trace, workload.primaryPoolBase(),
                               workload.primaryPoolSize());
    auto layouts = layouts::paperCampaignLayouts(
        workload.primaryPoolSize(), profile);

    models::SampleSet set;
    for (const auto &named : layouts) {
        auto result = cpu::simulateRun(
            platform, workload.makeAllocConfig(named.layout), trace);
        models::Sample sample;
        sample.layoutName = named.name;
        sample.r = static_cast<double>(result.runtimeCycles);
        sample.h = static_cast<double>(result.tlbHitsL2);
        sample.m = static_cast<double>(result.tlbMisses);
        sample.c = static_cast<double>(result.walkCycles);
        set.samples.push_back(sample);
        if (named.name == "grow-0")
            set.all4k = sample;
        if (named.name == "grow-8")
            set.all2m = sample;
    }
    set.all1g = set.all2m;
    return set;
}

} // namespace

int
main()
{
    using namespace mosaic;
    bench::banner("Ablation",
                  "models across machines: L2 stream prefetcher on/off");

    workloads::Graph500Params params;
    params.numVertices = 1u << 19;
    params.refBudget = 300000;
    workloads::Graph500Workload workload(params);
    auto trace = workload.generateTrace();

    cpu::PlatformSpec base = cpu::sandyBridge();
    cpu::PlatformSpec prefetching = base;
    prefetching.hierarchy.prefetcher.enabled = true;

    auto plain_set = runCampaign(workload, base, trace);
    auto pf_set = runCampaign(workload, prefetching, trace);

    // Native fits on each machine.
    models::Mosmodel on_plain, on_pf;
    auto plain_errors = models::evaluateModel(on_plain, plain_set);
    auto pf_errors = models::evaluateModel(on_pf, pf_set);

    // Cross-machine prediction: the Section IV warning quantified.
    stats::Vector measured, predicted;
    for (const auto &sample : pf_set.samples) {
        measured.push_back(sample.r);
        predicted.push_back(on_plain.predict(sample));
    }
    double cross = stats::maxAbsRelError(measured, predicted);

    TextTable table;
    table.setHeader({"scenario", "R(4KB) [Mcyc]", "max model error"});
    table.addRow({"fit & predict, no prefetcher",
                  formatDouble(plain_set.all4k.r / 1e6, 2),
                  bench::pct(plain_errors.maxError)});
    table.addRow({"fit & predict, with prefetcher",
                  formatDouble(pf_set.all4k.r / 1e6, 2),
                  bench::pct(pf_errors.maxError)});
    table.addRow({"fit w/o, predict with (cross-machine)",
                  formatDouble(pf_set.all4k.r / 1e6, 2),
                  bench::pct(cross)});
    std::printf("%s\n", table.render().c_str());

    std::printf("expected: native fits stay accurate on both "
                "machines; the cross-machine prediction degrades — "
                "runtime models are processor-specific (Section "
                "IV).\n");
    return 0;
}
