/**
 * @file
 * google-benchmark microbenchmarks of the substrates: allocator
 * operations, TLB lookups, page walks, cache accesses, trace replay
 * throughput, and model fitting. These guard the simulation speed the
 * campaign depends on.
 */

#include <benchmark/benchmark.h>

#include "cpu/system.hh"
#include "models/mosmodel.hh"
#include "models/evaluation.hh"
#include "mosalloc/mosalloc.hh"
#include "stats/lasso.hh"
#include "support/random.hh"
#include "vm/mmu.hh"
#include "workloads/gups.hh"

using namespace mosaic;

namespace
{

alloc::MosallocConfig
benchAllocConfig(Bytes heap)
{
    alloc::MosallocConfig config;
    config.heapLayout = alloc::MosaicLayout(heap);
    config.anonLayout = alloc::MosaicLayout(8_MiB);
    config.filePoolSize = 1_MiB;
    return config;
}

} // namespace

static void
BM_MosallocMallocFree(benchmark::State &state)
{
    alloc::Mosalloc allocator(benchAllocConfig(64_MiB));
    Rng rng(1);
    std::vector<VirtAddr> live;
    live.reserve(256);
    for (auto _ : state) {
        VirtAddr p = allocator.malloc(64 + rng.nextBounded(4096));
        live.push_back(p);
        if (live.size() >= 256) {
            for (VirtAddr q : live)
                allocator.free(q);
            live.clear();
        }
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK(BM_MosallocMallocFree);

static void
BM_AnonPoolMmapMunmap(benchmark::State &state)
{
    alloc::Mosalloc allocator(benchAllocConfig(8_MiB));
    for (auto _ : state) {
        VirtAddr p = allocator.mmap(64_KiB);
        allocator.munmap(p, 64_KiB);
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK(BM_AnonPoolMmapMunmap);

static void
BM_TlbLookupHit(benchmark::State &state)
{
    vm::TlbSystem tlb(vm::L1TlbConfig{}, vm::L2TlbConfig{});
    tlb.fill(0x1000, alloc::PageSize::Page4K);
    for (auto _ : state) {
        auto outcome = tlb.lookup(0x1000, alloc::PageSize::Page4K);
        benchmark::DoNotOptimize(outcome);
    }
}
BENCHMARK(BM_TlbLookupHit);

static void
BM_PageTableTranslate(benchmark::State &state)
{
    vm::FramePool mem;
    vm::PageTable table(mem);
    for (std::uint64_t i = 0; i < 1024; ++i)
        table.map(0x4000000000ULL + i * 4_KiB, alloc::PageSize::Page4K,
                  0x40000000ULL + i * 4_KiB);
    Rng rng(2);
    for (auto _ : state) {
        VirtAddr va = 0x4000000000ULL + rng.nextBounded(1024) * 4_KiB;
        auto xlate = table.translate(va);
        benchmark::DoNotOptimize(xlate);
    }
}
BENCHMARK(BM_PageTableTranslate);

static void
BM_FullPageWalk(benchmark::State &state)
{
    vm::FramePool mem;
    vm::PageTable table(mem);
    for (std::uint64_t i = 0; i < 4096; ++i)
        table.map(0x4000000000ULL + i * 4_KiB, alloc::PageSize::Page4K,
                  0x40000000ULL + i * 4_KiB);
    mem::MemoryHierarchy hierarchy(mem::HierarchyConfig{});
    vm::PageWalker walker(table, hierarchy, vm::PwcConfig{}, 1);
    Rng rng(3);
    Cycles now = 0;
    for (auto _ : state) {
        VirtAddr va = 0x4000000000ULL + rng.nextBounded(4096) * 4_KiB;
        auto result = walker.walk(va, now);
        now += 50;
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_FullPageWalk);

static void
BM_CacheAccess(benchmark::State &state)
{
    mem::MemoryHierarchy hierarchy(mem::HierarchyConfig{});
    Rng rng(4);
    for (auto _ : state) {
        auto result = hierarchy.access(rng.nextBounded(64_MiB),
                                       mem::Requester::Program);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_CacheAccess);

static void
BM_TraceReplayGups(benchmark::State &state)
{
    workloads::GupsParams params;
    params.tableBytes = 32_MiB;
    params.updates = 25000;
    workloads::GupsWorkload workload(params);
    auto trace = workload.generateTrace();
    auto config = workload.baselineAllocConfig();
    auto platform = cpu::sandyBridge();
    for (auto _ : state) {
        auto result = cpu::simulateRun(platform, config, trace);
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_TraceReplayGups)->Unit(benchmark::kMillisecond);

static void
BM_MosmodelFit(benchmark::State &state)
{
    models::SampleSet data;
    Rng rng(5);
    for (int i = 0; i < 54; ++i) {
        double coverage = i / 53.0;
        double m = 1e6 * (1 - coverage) * (0.9 + 0.2 * rng.nextDouble());
        double h = 3e5 * (1 - coverage);
        double c = 40 * m;
        data.samples.push_back(models::Sample{
            "s", 5e7 + 0.8 * c + 9 * h + c * c / 4e8, h, m, c});
    }
    data.all4k = data.samples.front();
    data.all2m = data.samples.back();
    data.all1g = data.samples.back();
    for (auto _ : state) {
        models::Mosmodel model;
        model.fit(data);
        benchmark::DoNotOptimize(model.numActiveCoefficients());
    }
}
BENCHMARK(BM_MosmodelFit);

static void
BM_LassoFit(benchmark::State &state)
{
    Rng rng(6);
    stats::Matrix x(54, 19);
    stats::Vector y(54);
    for (std::size_t i = 0; i < 54; ++i) {
        for (std::size_t j = 0; j < 19; ++j)
            x(i, j) = rng.nextDouble();
        y[i] = 3.0 * x(i, 0) - 2.0 * x(i, 7) + 0.5;
    }
    for (auto _ : state) {
        auto result = stats::fitLasso(x, y);
        benchmark::DoNotOptimize(result.intercept);
    }
}
BENCHMARK(BM_LassoFit);

BENCHMARK_MAIN();
