/**
 * @file
 * Ablation: Lasso regularization strength for Mosmodel.
 *
 * The 20-coefficient polynomial needs the L1 penalty: with lambda -> 0
 * (plain least squares) cross-validation error grows (overfitting);
 * with lambda too large the model underfits. The paper's one-in-ten
 * rule discussion (Section VI-C) motivates the middle ground.
 */

#include "bench_common.hh"

#include <algorithm>
#include <cmath>

#include "models/evaluation.hh"
#include "models/mosmodel.hh"

int
main()
{
    using namespace mosaic;
    bench::banner("Ablation", "Lasso regularization strength");

    auto data = bench::dataset();
    const double ratios[] = {0.0, 1e-5, 1e-3, 1e-2, 0.1, 0.5};

    TextTable table;
    table.setHeader({"lambda/lambda_max", "CV max error",
                     "fit max error", "mean active coeffs"});

    for (double ratio : ratios) {
        double cv_worst = 0.0, fit_worst = 0.0;
        double active_sum = 0.0;
        int pairs = 0;
        for (const auto &platform : data.platforms()) {
            for (const auto &workload : data.workloads()) {
                if (!data.has(platform, workload))
                    continue;
                auto set = data.sampleSet(platform, workload);
                if (!set.tlbSensitive())
                    continue;
                models::MosmodelConfig config;
                config.autoLambda = false; // study fixed strengths
                config.lasso.lambdaRatio = ratio;
                models::Mosmodel model(config);
                fit_worst = std::max(
                    fit_worst,
                    models::evaluateModel(model, set).maxError);
                active_sum += static_cast<double>(
                    model.numActiveCoefficients());
                ++pairs;
                double cv = models::crossValidateMaxError(
                    [ratio] {
                        models::MosmodelConfig c;
                        c.autoLambda = false;
                        c.lasso.lambdaRatio = ratio;
                        return std::make_unique<models::Mosmodel>(c);
                    },
                    set);
                cv_worst = std::max(cv_worst, cv);
            }
        }
        table.addRow({formatDouble(ratio, 5), bench::pct(cv_worst),
                      bench::pct(fit_worst),
                      formatDouble(active_sum / pairs, 1)});
    }

    // The default: per-workload lambda selection by internal CV.
    {
        double cv_worst = 0.0, fit_worst = 0.0;
        double active_sum = 0.0;
        int pairs = 0;
        for (const auto &platform : data.platforms()) {
            for (const auto &workload : data.workloads()) {
                if (!data.has(platform, workload))
                    continue;
                auto set = data.sampleSet(platform, workload);
                if (!set.tlbSensitive())
                    continue;
                models::Mosmodel model;
                fit_worst = std::max(
                    fit_worst,
                    models::evaluateModel(model, set).maxError);
                active_sum += static_cast<double>(
                    model.numActiveCoefficients());
                ++pairs;
                double cv = models::crossValidateMaxError(
                    [] { return std::make_unique<models::Mosmodel>(); },
                    set);
                cv_worst = std::max(cv_worst, cv);
            }
        }
        table.addRow({"auto (default)", bench::pct(cv_worst),
                      bench::pct(fit_worst),
                      formatDouble(active_sum / pairs, 1)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("expected: small-but-nonzero lambda minimizes CV "
                "error with few active coefficients; lambda=0 "
                "overfits, large lambda underfits.\n");
    return 0;
}
