/**
 * @file
 * Figure 2: maximal prediction error of each runtime model across all
 * TLB-sensitive workloads and all three platforms.
 *
 * Paper values: (a) old models 25%-192% (yaniv 25, gandhi 115, alam
 * 112, basu 192, pham 179); (b) new models poly1 26.3%, poly2 11.1%,
 * poly3 6.0%, mosmodel 2.9%.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mosaic;
    bench::banner("Figure 2", "maximal error of old and new models");

    auto data = bench::dataset();
    auto overall = exp::computeOverallMaxErrors(data);

    TextTable old_table;
    old_table.setHeader({"(a) old model", "maximal error"});
    for (const char *name : {"pham", "basu", "gandhi", "alam", "yaniv"})
        old_table.addRow({name, bench::pct(overall.at(name))});
    std::printf("%s\n", old_table.render().c_str());

    TextTable new_table;
    new_table.setHeader({"(b) new model", "maximal error"});
    for (const char *name : {"poly1", "poly2", "poly3", "mosmodel"})
        new_table.addRow({name, bench::pct(overall.at(name))});
    std::printf("%s\n", new_table.render().c_str());

    std::printf("paper: old models reach 25%%-192%%; mosmodel stays "
                "below 3%%.\n");
    return 0;
}
