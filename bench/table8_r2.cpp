/**
 * @file
 * Table 8: coefficient of determination (R^2) of single-variable
 * first-order regressions of runtime on C (walk cycles), M (TLB
 * misses), and H (L2-TLB hits), per workload and platform.
 *
 * Paper: C and M are the most useful predictors (usually > .9 and
 * highly correlated); H is the least valuable, sometimes reaching 0.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mosaic;
    bench::banner("Table 8", "single-input R^2 of C, M, H");

    auto data = bench::dataset();
    auto rows = exp::computeR2Grid(data);

    for (const auto &platform : data.platforms()) {
        std::printf("--- %s ---\n", platform.c_str());
        TextTable table;
        table.setHeader({"workload", "C", "M", "H"});
        for (const auto &row : rows) {
            if (row.platform != platform)
                continue;
            table.addRow({row.workload, formatDouble(row.r2c, 2),
                          formatDouble(row.r2m, 2),
                          formatDouble(row.r2h, 2)});
        }
        std::printf("%s\n", table.render().c_str());
    }

    // Aggregate ranking, the table's takeaway.
    double sum_c = 0, sum_m = 0, sum_h = 0;
    for (const auto &row : rows) {
        sum_c += row.r2c;
        sum_m += row.r2m;
        sum_h += row.r2h;
    }
    auto n = static_cast<double>(rows.size());
    std::printf("mean R^2:  C %.2f   M %.2f   H %.2f\n", sum_c / n,
                sum_m / n, sum_h / n);
    std::printf("paper: C and M are the best single predictors; H is "
                "the weakest.\n");
    return 0;
}
