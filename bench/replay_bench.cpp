/**
 * @file
 * Replay micro-benchmark: how fast does the simulator chew through a
 * trace?
 *
 * Every campaign cell is bottlenecked by the same inner loop (trace
 * record -> TLB -> page walk -> cache hierarchy), so this harness
 * times exactly that loop on a deterministic synthetic trace, per
 * platform and per layout, and emits a machine-readable
 * BENCH_replay.json so the records/sec trajectory is tracked across
 * PRs. Simulated *semantics* are pinned separately by the
 * golden-counter tests; this binary only measures throughput.
 *
 * Usage:
 *   replay_bench [--records N] [--reps R] [--footprint-mb M]
 *                [--jobs N] [--fused] [--paged-frames N]
 *                [--sample-clusters K] [--sample-interval N]
 *                [--sample-warmup N]
 *                [--out BENCH_replay.json] [--baseline OLD.json]
 *                [--baseline-source LABEL] [--quick]
 *                [--metrics-out FILE]
 *
 * --jobs runs the (platform, layout) grid cells concurrently, one
 * simulator per worker over the shared immutable trace, each timing
 * its replays through a private metrics shard (merged into the global
 * registry afterwards). Per-cell throughput numbers measure the same
 * single-thread inner loop for any jobs value; the sweep wall time
 * shows the parallel-replay scaling.
 *
 * --fused additionally replays each platform's whole layout grid in
 * one fused pass (cpu::simulateRunFused) and records fused vs.
 * sequential throughput, including the speedup ratio, in the JSON.
 * The fused counters are verified bit-identical against the
 * sequential runs before anything is written; a divergence fails the
 * benchmark (exit 4).
 *
 * --paged-frames sizes the paged stage's bounded FIFO frame pool
 * (default: half the footprint's 4K pages; 0 disables the stage).
 * The stage replays each platform's all4k cell through the
 * demand-paging path and emits a separate "paged" JSON block, so the
 * OS layer's throughput is tracked without perturbing the unbounded
 * aggregate the hot-path gate reads.
 *
 * --sample-clusters sizes the sampled stage (0 disables it): each
 * platform's all4k cell is replayed through the interval-sampling
 * pipeline (plan -> representative segments -> extrapolation) and the
 * stage emits a separate "sampled" JSON block with the effective
 * throughput (full-trace records per sampled-replay second), the
 * replay fraction, the reported error bound, and the speedup over the
 * sequential full replay of the same cell. --sample-interval and
 * --sample-warmup set the plan's interval length and warmup prefix in
 * records. Like the paged stage, this rides outside the unbounded
 * sweep, so the hot-path aggregate gate is unperturbed.
 *
 * --baseline embeds the aggregate numbers of a previous run (e.g. the
 * pre-optimization build) into the output, plus the speedup ratio.
 * --metrics-out additionally dumps the shared metrics registry (the
 * same replay phases and counters the campaign reports through) as a
 * JSON run manifest.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

#include "cpu/platform.hh"
#include "cpu/system.hh"
#include "mosalloc/mosalloc.hh"
#include "sampling/sampled_run.hh"
#include "support/fault_injector.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/sim_context.hh"
#include "trace/synth.hh"

namespace
{

using namespace mosaic;

struct BenchRun
{
    std::string platform;
    std::string layout;
    double wallSeconds = 0.0;
    double recordsPerSec = 0.0;
    cpu::RunResult result;
};

/** One fused pass (a platform's whole layout grid in one replay). */
struct FusedRun
{
    std::string platform;
    std::size_t layouts = 0;
    double wallSeconds = 0.0;
    double recordsPerSec = 0.0;
};

/**
 * Calibrated host clock rate in Hz for the host_cycles_per_record
 * metric, or 0 when unknown.
 *
 * On x86-64 the TSC is measured against steady_clock over a ~50 ms
 * window; every CPU this project targets has an invariant TSC
 * (constant rate regardless of turbo or power state), so one window
 * calibrates the whole run and the derived cycles/record are in
 * *nominal* (base-clock) cycles — the unit the <100 cycles/record
 * kernel budget is written in. MOSAIC_HOST_GHZ overrides the
 * calibration (and is the only source on non-x86 hosts, where the
 * field is otherwise emitted as 0 and regression gates skip it).
 */
double
calibrateHostHz()
{
    if (const char *ghz = std::getenv("MOSAIC_HOST_GHZ")) {
        double value = std::atof(ghz);
        if (value > 0.0)
            return value * 1e9;
    }
#if defined(__x86_64__) || defined(_M_X64)
    using clock = std::chrono::steady_clock;
    auto t0 = clock::now();
    std::uint64_t c0 = __rdtsc();
    while (std::chrono::duration<double>(clock::now() - t0).count() <
           0.05) {
        // Busy-wait: sleeping would let the window include scheduler
        // wakeup latency on loaded CI runners.
    }
    auto t1 = clock::now();
    std::uint64_t c1 = __rdtsc();
    double seconds = std::chrono::duration<double>(t1 - t0).count();
    if (seconds <= 0.0 || c1 <= c0)
        return 0.0;
    return static_cast<double>(c1 - c0) / seconds;
#else
    return 0.0;
#endif
}

/** Pull "key": number out of a previously written bench JSON. */
bool
extractNumber(const std::string &text, const std::string &object,
              const std::string &key, double &out)
{
    std::size_t obj = text.find("\"" + object + "\"");
    if (obj == std::string::npos)
        return false;
    std::size_t pos = text.find("\"" + key + "\"", obj);
    if (pos == std::string::npos)
        return false;
    pos = text.find(':', pos);
    if (pos == std::string::npos)
        return false;
    return std::sscanf(text.c_str() + pos + 1, "%lf", &out) == 1;
}

std::string
getOpt(int argc, char **argv, const char *name, const char *fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return argv[i + 1];
    }
    return fallback;
}

bool
hasFlag(int argc, char **argv, const char *name)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return true;
    }
    return false;
}

/** Fields of a RunResult that must agree between engines. */
bool
sameCounters(const cpu::RunResult &a, const cpu::RunResult &b)
{
    return a.runtimeCycles == b.runtimeCycles &&
           a.tlbHitsL2 == b.tlbHitsL2 && a.tlbMisses == b.tlbMisses &&
           a.walkCycles == b.walkCycles && a.l1TlbHits == b.l1TlbHits &&
           a.walkerQueueCycles == b.walkerQueueCycles &&
           a.progL1dLoads == b.progL1dLoads &&
           a.progL2Loads == b.progL2Loads &&
           a.progL3Loads == b.progL3Loads &&
           a.progDramLoads == b.progDramLoads &&
           a.walkL1dLoads == b.walkL1dLoads &&
           a.walkL2Loads == b.walkL2Loads &&
           a.walkL3Loads == b.walkL3Loads &&
           a.walkDramLoads == b.walkDramLoads &&
           a.swapCycles == b.swapCycles &&
           a.majorFaults == b.majorFaults &&
           a.evictions == b.evictions && a.writebacks == b.writebacks;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = hasFlag(argc, argv, "--quick");
    const bool fused = hasFlag(argc, argv, "--fused");
    const std::uint64_t records = std::stoull(
        getOpt(argc, argv, "--records", quick ? "200000" : "2000000"));
    const int reps =
        std::stoi(getOpt(argc, argv, "--reps", quick ? "2" : "3"));
    const Bytes footprint_mb =
        std::stoull(getOpt(argc, argv, "--footprint-mb", "64"));
    const std::string out_path =
        getOpt(argc, argv, "--out", "BENCH_replay.json");
    const std::string baseline_path = getOpt(argc, argv, "--baseline", "");
    const std::string baseline_source =
        getOpt(argc, argv, "--baseline-source", "previous run");
    const unsigned jobs = static_cast<unsigned>(
        std::stoul(getOpt(argc, argv, "--jobs", "1")));

    const Bytes footprint = footprint_mb * 1_MiB;
    const Bytes pool = alignUp(footprint + 4_MiB, 1_GiB);

    // The traced region: one heap allocation; the trace is a pure
    // function of (base, footprint, seed) and thus identical for every
    // platform and layout below.
    struct NamedMosaic
    {
        const char *name;
        alloc::MosaicLayout layout;
    };
    std::vector<NamedMosaic> mosaics;
    mosaics.push_back(
        {"all4k", alloc::MosaicLayout(pool)});
    mosaics.push_back(
        {"all2m", alloc::MosaicLayout::uniform(pool, alloc::PageSize::Page2M)});
    mosaics.push_back(
        {"all1g", alloc::MosaicLayout::uniform(pool, alloc::PageSize::Page1G)});
    mosaics.push_back(
        {"win2m", alloc::MosaicLayout::withWindow(
                      pool, 0, std::min<Bytes>(24_MiB, footprint),
                      alloc::PageSize::Page2M)});

    // The grid cells are independent: build them all first, then run
    // them over the worker pool. Each cell owns its allocator, trace
    // and System; each worker times through its own metrics shard, so
    // the "replay/run" phase deltas never mix across workers.
    struct BenchCell
    {
        const cpu::PlatformSpec *platform;
        const NamedMosaic *mosaic;
        alloc::MosallocConfig allocConfig;
        VirtAddr base = 0;
        trace::MemoryTrace trace;
    };
    std::vector<BenchCell> cells;
    const auto platforms = cpu::paperPlatforms();
    for (const auto &platform : platforms) {
        for (const auto &mosaic : mosaics) {
            BenchCell cell;
            cell.platform = &platform;
            cell.mosaic = &mosaic;
            cell.allocConfig.heapLayout = mosaic.layout;
            cell.allocConfig.anonLayout = alloc::MosaicLayout(16_MiB);
            alloc::Mosalloc allocator(cell.allocConfig);
            cell.base = allocator.malloc(footprint);

            trace::SynthTraceParams synth;
            synth.records = records;
            synth.base = cell.base;
            synth.footprint = footprint;
            cell.trace = trace::makeSynthTrace(synth);
            cells.push_back(std::move(cell));
        }
    }

    auto runPool = [](unsigned n, auto &&body) {
        std::vector<std::thread> pool;
        for (unsigned i = 0; i < n; ++i)
            pool.emplace_back(body, i);
        for (auto &thread : pool)
            thread.join();
    };

    const unsigned workers = std::max(
        1u, std::min<unsigned>(
                jobs, static_cast<unsigned>(cells.size())));
    std::vector<BenchRun> runs(cells.size());
    std::vector<MetricsRegistry> shards(workers);
    std::atomic<std::size_t> next_cell{0};
    auto sweep_start = std::chrono::steady_clock::now();
    runPool(workers, [&](unsigned worker) {
        MetricsRegistry &shard = shards[worker];
        SimContext context(shard, faults(), 0, worker);
        while (true) {
            std::size_t index = next_cell.fetch_add(1);
            if (index >= cells.size())
                return;
            const BenchCell &cell = cells[index];
            // Rebuild the allocation deterministically: same
            // config, same malloc, same base the trace targets.
            alloc::Mosalloc allocator(cell.allocConfig);
            VirtAddr base = allocator.malloc(footprint);
            mosaic_assert(base == cell.base,
                          "allocator no longer deterministic");

            BenchRun run;
            run.platform = cell.platform->name;
            run.layout = cell.mosaic->name;
            run.wallSeconds = 1e300;
            for (int rep = 0; rep < reps; ++rep) {
                // Fresh machine per rep: cold TLBs and caches, so
                // every rep replays the identical work. Wall time
                // comes from this worker's shard — System::run
                // publishes each replay into the "replay/run"
                // phase — so the bench and --metrics-out report
                // from one source instead of ad-hoc counters.
                cpu::System system(*cell.platform, allocator,
                                   context);
                PhaseStats before = shard.phase("replay/run");
                run.result = system.run(cell.trace);
                PhaseStats after = shard.phase("replay/run");
                run.wallSeconds = std::min(
                    run.wallSeconds, after.seconds - before.seconds);
            }
            run.recordsPerSec =
                static_cast<double>(records) / run.wallSeconds;
            runs[index] = std::move(run);
        }
    });
    double sweep_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      sweep_start)
            .count();
    for (unsigned worker = 0; worker < workers; ++worker)
        mosaic::metrics().mergeFrom(shards[worker]);
    mosaic::metrics().set("bench/jobs", static_cast<double>(workers));

    double total_wall = 0.0;
    double total_records = 0.0;
    for (const auto &run : runs) {
        std::printf("%-12s %-6s %8.3fs  %12.0f records/sec\n",
                    run.platform.c_str(), run.layout.c_str(),
                    run.wallSeconds, run.recordsPerSec);
        total_wall += run.wallSeconds;
        total_records += static_cast<double>(records);
    }

    double aggregate_rps = total_records / total_wall;
    const double host_hz = calibrateHostHz();
    const double aggregate_cycles =
        host_hz > 0.0 ? host_hz / aggregate_rps : 0.0;
    std::printf("aggregate: %.3fs replay time, %.0f records/sec "
                "(%u job(s), sweep wall %.3fs)\n",
                total_wall, aggregate_rps, workers, sweep_wall);
    if (host_hz > 0.0) {
        std::printf("host: %.1f cycles/record at %.3f GHz (TSC)\n",
                    aggregate_cycles, host_hz / 1e9);
    }

    // ---- Fused passes: each platform's whole layout grid through one
    // trace pass. The per-lane counters must be bit-identical to the
    // sequential cells above; a mismatch is a correctness bug, not a
    // noise source, and fails the benchmark. ----
    std::vector<FusedRun> fused_runs;
    double fused_wall = 0.0, fused_records = 0.0;
    if (fused) {
        fused_runs.resize(platforms.size());
        const unsigned fused_workers = std::max(
            1u, std::min<unsigned>(
                    jobs, static_cast<unsigned>(platforms.size())));
        std::vector<MetricsRegistry> fused_shards(fused_workers);
        std::atomic<std::size_t> next_platform{0};
        std::atomic<bool> mismatch{false};
        runPool(fused_workers, [&](unsigned worker) {
            MetricsRegistry &shard = fused_shards[worker];
            SimContext context(shard, faults(), 0, worker);
            while (true) {
                std::size_t p = next_platform.fetch_add(1);
                if (p >= platforms.size())
                    return;
                const auto &platform = platforms[p];
                // The grid cells of this platform, in mosaic order;
                // all lanes replay the first cell's trace (the traced
                // base is layout-independent by construction).
                std::vector<const BenchCell *> grid;
                std::vector<alloc::MosallocConfig> configs;
                for (const auto &cell : cells) {
                    if (cell.platform != &platform)
                        continue;
                    mosaic_assert(cell.base == cells[0].base,
                                  "traced base must not depend on the "
                                  "layout");
                    grid.push_back(&cell);
                    configs.push_back(cell.allocConfig);
                }
                const trace::MemoryTrace &trace = grid.front()->trace;

                FusedRun run;
                run.platform = platform.name;
                run.layouts = configs.size();
                run.wallSeconds = 1e300;
                std::vector<Result<cpu::RunResult>> outcomes;
                for (int rep = 0; rep < reps; ++rep) {
                    PhaseStats before = shard.phase("replay/fused_pass");
                    outcomes = cpu::simulateRunFused(platform, configs,
                                                     trace, context);
                    PhaseStats after = shard.phase("replay/fused_pass");
                    run.wallSeconds = std::min(
                        run.wallSeconds, after.seconds - before.seconds);
                }
                run.recordsPerSec = static_cast<double>(records) *
                                    static_cast<double>(run.layouts) /
                                    run.wallSeconds;
                for (std::size_t i = 0; i < grid.size(); ++i) {
                    if (!outcomes[i].ok() ||
                        !sameCounters(outcomes[i].value(),
                                      runs[grid[i] - cells.data()]
                                          .result)) {
                        std::fprintf(
                            stderr,
                            "FUSED COUNTER MISMATCH: %s/%s diverges "
                            "from the sequential replay\n",
                            platform.name.c_str(),
                            grid[i]->mosaic->name);
                        mismatch.store(true);
                    }
                }
                fused_runs[p] = std::move(run);
            }
        });
        if (mismatch.load())
            return 4;
        for (unsigned worker = 0; worker < fused_workers; ++worker)
            mosaic::metrics().mergeFrom(fused_shards[worker]);

        for (const auto &run : fused_runs) {
            std::printf("%-12s fused(%zu layouts) %8.3fs  "
                        "%12.0f records/sec\n",
                        run.platform.c_str(), run.layouts,
                        run.wallSeconds, run.recordsPerSec);
            fused_wall += run.wallSeconds;
            fused_records += static_cast<double>(records) *
                             static_cast<double>(run.layouts);
        }
        std::printf("fused aggregate: %.3fs replay time, %.0f "
                    "records/sec (%.3fx vs sequential)\n",
                    fused_wall, fused_records / fused_wall,
                    (fused_records / fused_wall) / aggregate_rps);
    }

    // ---- Paged stage: the demand-paging replay path (bounded FIFO
    // frame pool) over each platform's all4k cell. A separate stage
    // and JSON block by design: the unbounded sweep above runs the
    // untouched hot loop (its aggregate gate is what guards "paging
    // costs nothing when off"), while this block tracks the paged
    // path's own throughput trajectory. Frames default to half the
    // footprint's 4K pages so the pool thrashes enough to exercise
    // the fault/evict/writeback machinery every rep. ----
    struct PagedRun
    {
        std::string platform;
        std::uint64_t frames = 0;
        double wallSeconds = 0.0;
        double recordsPerSec = 0.0;
        cpu::RunResult result;
    };
    std::vector<PagedRun> paged_runs;
    double paged_wall = 0.0, paged_records = 0.0;
    const std::uint64_t paged_frames = std::stoull(getOpt(
        argc, argv, "--paged-frames",
        std::to_string(footprint / 4096 / 2).c_str()));
    if (paged_frames > 0) {
        vm::OsConfig os;
        os.memFrames = paged_frames;
        os.policy = vm::ReplacementPolicyKind::Fifo;
        for (const auto &cell : cells) {
            if (std::strcmp(cell.mosaic->name, "all4k") != 0)
                continue;
            PagedRun run;
            run.platform = cell.platform->name;
            run.frames = paged_frames;
            run.wallSeconds = 1e300;
            for (int rep = 0; rep < reps; ++rep) {
                auto t0 = std::chrono::steady_clock::now();
                run.result = cpu::simulateRun(
                    *cell.platform, cell.allocConfig, cell.trace, os);
                double seconds = std::chrono::duration<double>(
                                     std::chrono::steady_clock::now() -
                                     t0)
                                     .count();
                run.wallSeconds = std::min(run.wallSeconds, seconds);
            }
            run.recordsPerSec =
                static_cast<double>(records) / run.wallSeconds;
            std::printf("%-12s paged(%llu frames) %6.3fs  "
                        "%12.0f records/sec  (S=%llu, faults=%llu)\n",
                        run.platform.c_str(),
                        static_cast<unsigned long long>(run.frames),
                        run.wallSeconds, run.recordsPerSec,
                        static_cast<unsigned long long>(
                            run.result.swapCycles),
                        static_cast<unsigned long long>(
                            run.result.majorFaults));
            paged_wall += run.wallSeconds;
            paged_records += static_cast<double>(records);
            paged_runs.push_back(std::move(run));
        }
        if (!paged_runs.empty()) {
            std::printf("paged aggregate: %.3fs replay time, "
                        "%.0f records/sec\n",
                        paged_wall, paged_records / paged_wall);
        }
    }

    // ---- Sampled stage: the interval-sampling pipeline over each
    // platform's all4k cell. Like the paged stage, a separate block
    // outside the unbounded sweep: what it tracks is the *effective*
    // throughput of partial replay — full-trace records covered per
    // second of sampled replay — plus the plan's reported error bound
    // and the measured speedup over the full sequential replay of the
    // same cell. ----
    struct SampledBenchRun
    {
        std::string platform;
        double wallSeconds = 0.0;
        double effectiveRecordsPerSec = 0.0;
        double estErr = 0.0;
        double speedupVsFull = 0.0;
        std::uint64_t recordsReplayed = 0;
    };
    std::vector<SampledBenchRun> sampled_runs;
    double sampled_wall = 0.0, sampled_trace_records = 0.0;
    double sampled_replay_fraction = 0.0;
    sampling::SamplingConfig sample_config;
    sample_config.mode = sampling::SampleMode::Interval;
    sample_config.clusters = static_cast<std::uint32_t>(std::stoul(
        getOpt(argc, argv, "--sample-clusters", "8")));
    sample_config.intervalRecords = std::stoull(
        getOpt(argc, argv, "--sample-interval", "16384"));
    sample_config.warmupRecords = std::stoull(
        getOpt(argc, argv, "--sample-warmup", "4096"));
    if (sample_config.clusters > 0) {
        // The plan reads only the trace (layout- and platform-
        // independent), and every cell traces the same synthetic
        // stream: one plan serves the whole stage.
        const sampling::SamplePlan plan =
            sampling::buildSamplePlan(cells[0].trace, sample_config);
        for (const auto &cell : cells) {
            if (std::strcmp(cell.mosaic->name, "all4k") != 0)
                continue;
            SampledBenchRun run;
            run.platform = cell.platform->name;
            run.wallSeconds = 1e300;
            sampling::SampledEstimate estimate;
            for (int rep = 0; rep < reps; ++rep) {
                auto t0 = std::chrono::steady_clock::now();
                estimate = sampling::simulateSampled(
                    *cell.platform, cell.allocConfig, cell.trace,
                    plan);
                double seconds = std::chrono::duration<double>(
                                     std::chrono::steady_clock::now() -
                                     t0)
                                     .count();
                run.wallSeconds = std::min(run.wallSeconds, seconds);
            }
            run.effectiveRecordsPerSec =
                static_cast<double>(records) / run.wallSeconds;
            run.estErr = estimate.estErr;
            run.recordsReplayed = estimate.recordsReplayed;
            // The sequential sweep above timed this exact cell's full
            // replay; the ratio is the sampled stage's headline.
            for (const auto &full : runs) {
                if (full.platform == run.platform &&
                    full.layout == "all4k") {
                    run.speedupVsFull =
                        full.wallSeconds / run.wallSeconds;
                    break;
                }
            }
            std::printf("%-12s sampled(%llu/%llu records) %6.3fs  "
                        "%12.0f eff records/sec  (%.2fx vs full, "
                        "est_err=%.4f)\n",
                        run.platform.c_str(),
                        static_cast<unsigned long long>(
                            run.recordsReplayed),
                        static_cast<unsigned long long>(records),
                        run.wallSeconds, run.effectiveRecordsPerSec,
                        run.speedupVsFull, run.estErr);
            sampled_wall += run.wallSeconds;
            sampled_trace_records += static_cast<double>(records);
            sampled_runs.push_back(std::move(run));
        }
        sampled_replay_fraction = plan.replayFraction();
        if (!sampled_runs.empty()) {
            std::printf("sampled aggregate: %.3fs replay time, %.0f "
                        "eff records/sec (replay fraction %.3f)\n",
                        sampled_wall,
                        sampled_trace_records / sampled_wall,
                        sampled_replay_fraction);
        }
    }

    double base_rps = 0.0, base_wall = 0.0;
    bool have_baseline = false;
    if (!baseline_path.empty()) {
        std::ifstream in(baseline_path);
        std::stringstream buffer;
        buffer << in.rdbuf();
        std::string text = buffer.str();
        have_baseline =
            extractNumber(text, "aggregate", "records_per_sec",
                          base_rps) &&
            extractNumber(text, "aggregate", "wall_seconds", base_wall);
        if (!have_baseline) {
            std::fprintf(stderr,
                         "warn: no aggregate numbers found in %s\n",
                         baseline_path.c_str());
        }
    }

    std::ostringstream json;
    json << "{\n";
    json << "  \"schema\": \"mosaic-replay-bench/5\",\n";
    json << "  \"records\": " << records << ",\n";
    json << "  \"reps\": " << reps << ",\n";
    json << "  \"jobs\": " << workers << ",\n";
    json << "  \"footprint_bytes\": " << footprint << ",\n";
    json << "  \"runs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const auto &run = runs[i];
        const auto &r = run.result;
        json << "    {\"platform\": \"" << run.platform
             << "\", \"layout\": \"" << run.layout << "\",\n";
        char line[256];
        std::snprintf(line, sizeof line,
                      "     \"wall_seconds\": %.6f, "
                      "\"records_per_sec\": %.1f, "
                      "\"host_cycles_per_record\": %.1f,\n",
                      run.wallSeconds, run.recordsPerSec,
                      host_hz > 0.0 ? host_hz / run.recordsPerSec
                                    : 0.0);
        json << line;
        json << "     \"counters\": {\"r\": " << r.runtimeCycles
             << ", \"h\": " << r.tlbHitsL2 << ", \"m\": " << r.tlbMisses
             << ", \"c\": " << r.walkCycles
             << ", \"l1_tlb_hits\": " << r.l1TlbHits
             << ", \"walker_queue\": " << r.walkerQueueCycles << "},\n";
        json << "     \"cache_loads\": {\"prog_l1\": " << r.progL1dLoads
             << ", \"prog_l2\": " << r.progL2Loads
             << ", \"prog_l3\": " << r.progL3Loads
             << ", \"prog_dram\": " << r.progDramLoads
             << ", \"walk_l1\": " << r.walkL1dLoads
             << ", \"walk_l2\": " << r.walkL2Loads
             << ", \"walk_l3\": " << r.walkL3Loads
             << ", \"walk_dram\": " << r.walkDramLoads << "}}"
             << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    json << "  ],\n";
    if (fused) {
        json << "  \"fused_runs\": [\n";
        for (std::size_t i = 0; i < fused_runs.size(); ++i) {
            const auto &run = fused_runs[i];
            char line[256];
            std::snprintf(line, sizeof line,
                          "    {\"platform\": \"%s\", \"layouts\": %zu, "
                          "\"wall_seconds\": %.6f, "
                          "\"records_per_sec\": %.1f}%s\n",
                          run.platform.c_str(), run.layouts,
                          run.wallSeconds, run.recordsPerSec,
                          i + 1 < fused_runs.size() ? "," : "");
            json << line;
        }
        json << "  ],\n";
        char fusedagg[256];
        std::snprintf(fusedagg, sizeof fusedagg,
                      "  \"fused\": {\"layouts_per_pass\": %zu, "
                      "\"wall_seconds\": %.6f, "
                      "\"records_per_sec\": %.1f, "
                      "\"speedup_vs_sequential\": %.3f},\n",
                      mosaics.size(), fused_wall,
                      fused_records / fused_wall,
                      (fused_records / fused_wall) / aggregate_rps);
        json << fusedagg;
    }
    if (!paged_runs.empty()) {
        json << "  \"paged_runs\": [\n";
        for (std::size_t i = 0; i < paged_runs.size(); ++i) {
            const auto &run = paged_runs[i];
            const auto &r = run.result;
            char line[256];
            std::snprintf(line, sizeof line,
                          "    {\"platform\": \"%s\", "
                          "\"layout\": \"all4k\", \"frames\": %llu, "
                          "\"wall_seconds\": %.6f, "
                          "\"records_per_sec\": %.1f,\n",
                          run.platform.c_str(),
                          static_cast<unsigned long long>(run.frames),
                          run.wallSeconds, run.recordsPerSec);
            json << line;
            json << "     \"counters\": {\"r\": " << r.runtimeCycles
                 << ", \"h\": " << r.tlbHitsL2
                 << ", \"m\": " << r.tlbMisses
                 << ", \"c\": " << r.walkCycles
                 << ", \"s\": " << r.swapCycles
                 << ", \"major_faults\": " << r.majorFaults
                 << ", \"evictions\": " << r.evictions
                 << ", \"writebacks\": " << r.writebacks << "}}"
                 << (i + 1 < paged_runs.size() ? "," : "") << "\n";
        }
        json << "  ],\n";
        char pagedagg[192];
        std::snprintf(pagedagg, sizeof pagedagg,
                      "  \"paged\": {\"frames\": %llu, "
                      "\"wall_seconds\": %.6f, "
                      "\"records_per_sec\": %.1f},\n",
                      static_cast<unsigned long long>(paged_frames),
                      paged_wall, paged_records / paged_wall);
        json << pagedagg;
    }
    if (!sampled_runs.empty()) {
        json << "  \"sampled_runs\": [\n";
        for (std::size_t i = 0; i < sampled_runs.size(); ++i) {
            const auto &run = sampled_runs[i];
            char line[320];
            std::snprintf(line, sizeof line,
                          "    {\"platform\": \"%s\", "
                          "\"layout\": \"all4k\", "
                          "\"wall_seconds\": %.6f, "
                          "\"effective_records_per_sec\": %.1f, "
                          "\"records_replayed\": %llu, "
                          "\"est_err\": %.6f, "
                          "\"speedup_vs_full\": %.3f}%s\n",
                          run.platform.c_str(), run.wallSeconds,
                          run.effectiveRecordsPerSec,
                          static_cast<unsigned long long>(
                              run.recordsReplayed),
                          run.estErr, run.speedupVsFull,
                          i + 1 < sampled_runs.size() ? "," : "");
            json << line;
        }
        json << "  ],\n";
        char sampledagg[320];
        std::snprintf(
            sampledagg, sizeof sampledagg,
            "  \"sampled\": {\"interval_records\": %llu, "
            "\"clusters\": %u, \"warmup_records\": %llu, "
            "\"replay_fraction\": %.4f, "
            "\"wall_seconds\": %.6f, "
            "\"effective_records_per_sec\": %.1f},\n",
            static_cast<unsigned long long>(
                sample_config.intervalRecords),
            sample_config.clusters,
            static_cast<unsigned long long>(
                sample_config.warmupRecords),
            sampled_replay_fraction, sampled_wall,
            sampled_trace_records / sampled_wall);
        json << sampledagg;
    }
    // host_cycles_per_record is in nominal TSC cycles (see
    // calibrateHostHz); 0 means "rate unknown" and regression gates
    // skip the cycle checks rather than compare garbage.
    char agg[384];
    std::snprintf(agg, sizeof agg,
                  "  \"aggregate\": {\"wall_seconds\": %.6f, "
                  "\"records_per_sec\": %.1f, "
                  "\"sweep_wall_seconds\": %.6f, "
                  "\"host_cycles_per_record\": %.1f, "
                  "\"host_tsc_ghz\": %.3f}",
                  total_wall, aggregate_rps, sweep_wall,
                  aggregate_cycles, host_hz / 1e9);
    json << agg;
    if (have_baseline) {
        char base[512];
        std::snprintf(base, sizeof base,
                      ",\n  \"baseline\": {\"wall_seconds\": %.6f, "
                      "\"records_per_sec\": %.1f, \"source\": \"%s\"},\n"
                      "  \"speedup_vs_baseline\": %.3f",
                      base_wall, base_rps, baseline_source.c_str(),
                      base_rps > 0 ? aggregate_rps / base_rps : 0.0);
        json << base;
        if (base_rps > 0) {
            std::printf("speedup vs baseline (%s): %.3fx\n",
                        baseline_source.c_str(), aggregate_rps / base_rps);
        }
    }
    json << "\n}\n";

    std::ofstream out(out_path);
    out << json.str();
    out.close();
    std::printf("wrote %s\n", out_path.c_str());

    const std::string metrics_out =
        getOpt(argc, argv, "--metrics-out", "");
    if (!metrics_out.empty()) {
        mosaic::RunManifest manifest("replay_bench");
        manifest.setConfig("records", records);
        manifest.setConfig("reps", static_cast<std::uint64_t>(reps));
        manifest.setConfig("jobs", static_cast<std::uint64_t>(workers));
        manifest.setConfig("footprint_bytes", footprint);
        manifest.setConfig("fused",
                           static_cast<std::uint64_t>(fused ? 1 : 0));
        manifest.setConfig("out", out_path);
        auto written = manifest.write(metrics_out, mosaic::metrics());
        if (!written.ok()) {
            std::fprintf(stderr,
                         "warn: cannot write metrics manifest %s: %s\n",
                         metrics_out.c_str(),
                         written.error().str().c_str());
        } else {
            std::printf("wrote %s\n", metrics_out.c_str());
        }
    }
    return 0;
}
