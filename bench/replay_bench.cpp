/**
 * @file
 * Replay micro-benchmark: how fast does the simulator chew through a
 * trace?
 *
 * Every campaign cell is bottlenecked by the same inner loop (trace
 * record -> TLB -> page walk -> cache hierarchy), so this harness
 * times exactly that loop on a deterministic synthetic trace, per
 * platform and per layout, and emits a machine-readable
 * BENCH_replay.json so the records/sec trajectory is tracked across
 * PRs. Simulated *semantics* are pinned separately by the
 * golden-counter tests; this binary only measures throughput.
 *
 * Usage:
 *   replay_bench [--records N] [--reps R] [--footprint-mb M]
 *                [--out BENCH_replay.json] [--baseline OLD.json]
 *                [--baseline-source LABEL] [--quick]
 *                [--metrics-out FILE]
 *
 * --baseline embeds the aggregate numbers of a previous run (e.g. the
 * pre-optimization build) into the output, plus the speedup ratio.
 * --metrics-out additionally dumps the shared metrics registry (the
 * same replay phases and counters the campaign reports through) as a
 * JSON run manifest.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cpu/platform.hh"
#include "cpu/system.hh"
#include "mosalloc/mosalloc.hh"
#include "support/metrics.hh"
#include "trace/synth.hh"

namespace
{

using namespace mosaic;

struct BenchRun
{
    std::string platform;
    std::string layout;
    double wallSeconds = 0.0;
    double recordsPerSec = 0.0;
    cpu::RunResult result;
};

/** Pull "key": number out of a previously written bench JSON. */
bool
extractNumber(const std::string &text, const std::string &object,
              const std::string &key, double &out)
{
    std::size_t obj = text.find("\"" + object + "\"");
    if (obj == std::string::npos)
        return false;
    std::size_t pos = text.find("\"" + key + "\"", obj);
    if (pos == std::string::npos)
        return false;
    pos = text.find(':', pos);
    if (pos == std::string::npos)
        return false;
    return std::sscanf(text.c_str() + pos + 1, "%lf", &out) == 1;
}

std::string
getOpt(int argc, char **argv, const char *name, const char *fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return argv[i + 1];
    }
    return fallback;
}

bool
hasFlag(int argc, char **argv, const char *name)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return true;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = hasFlag(argc, argv, "--quick");
    const std::uint64_t records = std::stoull(
        getOpt(argc, argv, "--records", quick ? "200000" : "2000000"));
    const int reps =
        std::stoi(getOpt(argc, argv, "--reps", quick ? "2" : "3"));
    const Bytes footprint_mb =
        std::stoull(getOpt(argc, argv, "--footprint-mb", "64"));
    const std::string out_path =
        getOpt(argc, argv, "--out", "BENCH_replay.json");
    const std::string baseline_path = getOpt(argc, argv, "--baseline", "");
    const std::string baseline_source =
        getOpt(argc, argv, "--baseline-source", "previous run");

    const Bytes footprint = footprint_mb * 1_MiB;
    const Bytes pool = alignUp(footprint + 4_MiB, 1_GiB);

    // The traced region: one heap allocation; the trace is a pure
    // function of (base, footprint, seed) and thus identical for every
    // platform and layout below.
    struct NamedMosaic
    {
        const char *name;
        alloc::MosaicLayout layout;
    };
    std::vector<NamedMosaic> mosaics;
    mosaics.push_back(
        {"all4k", alloc::MosaicLayout(pool)});
    mosaics.push_back(
        {"all2m", alloc::MosaicLayout::uniform(pool, alloc::PageSize::Page2M)});

    std::vector<BenchRun> runs;
    double total_wall = 0.0;
    double total_records = 0.0;

    for (const auto &platform : cpu::paperPlatforms()) {
        for (const auto &mosaic : mosaics) {
            alloc::MosallocConfig alloc_config;
            alloc_config.heapLayout = mosaic.layout;
            alloc_config.anonLayout = alloc::MosaicLayout(16_MiB);
            alloc::Mosalloc allocator(alloc_config);
            VirtAddr base = allocator.malloc(footprint);

            trace::SynthTraceParams synth;
            synth.records = records;
            synth.base = base;
            synth.footprint = footprint;
            trace::MemoryTrace trace = trace::makeSynthTrace(synth);

            BenchRun run;
            run.platform = platform.name;
            run.layout = mosaic.name;
            run.wallSeconds = 1e300;
            for (int rep = 0; rep < reps; ++rep) {
                // Fresh machine per rep: cold TLBs and caches, so
                // every rep replays the identical work. Wall time
                // comes from the shared metrics registry — System::run
                // publishes each replay into the "replay/run" phase —
                // so the bench and --metrics-out report from one
                // source instead of ad-hoc counters.
                cpu::System system(platform, allocator);
                PhaseStats before = mosaic::metrics().phase("replay/run");
                run.result = system.run(trace);
                PhaseStats after = mosaic::metrics().phase("replay/run");
                run.wallSeconds = std::min(
                    run.wallSeconds, after.seconds - before.seconds);
            }
            run.recordsPerSec =
                static_cast<double>(records) / run.wallSeconds;
            std::printf("%-12s %-6s %8.3fs  %12.0f records/sec\n",
                        run.platform.c_str(), run.layout.c_str(),
                        run.wallSeconds, run.recordsPerSec);
            total_wall += run.wallSeconds;
            total_records += static_cast<double>(records);
            runs.push_back(run);
        }
    }

    double aggregate_rps = total_records / total_wall;
    std::printf("aggregate: %.3fs, %.0f records/sec\n", total_wall,
                aggregate_rps);

    double base_rps = 0.0, base_wall = 0.0;
    bool have_baseline = false;
    if (!baseline_path.empty()) {
        std::ifstream in(baseline_path);
        std::stringstream buffer;
        buffer << in.rdbuf();
        std::string text = buffer.str();
        have_baseline =
            extractNumber(text, "aggregate", "records_per_sec",
                          base_rps) &&
            extractNumber(text, "aggregate", "wall_seconds", base_wall);
        if (!have_baseline) {
            std::fprintf(stderr,
                         "warn: no aggregate numbers found in %s\n",
                         baseline_path.c_str());
        }
    }

    std::ostringstream json;
    json << "{\n";
    json << "  \"schema\": \"mosaic-replay-bench/1\",\n";
    json << "  \"records\": " << records << ",\n";
    json << "  \"reps\": " << reps << ",\n";
    json << "  \"footprint_bytes\": " << footprint << ",\n";
    json << "  \"runs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const auto &run = runs[i];
        const auto &r = run.result;
        json << "    {\"platform\": \"" << run.platform
             << "\", \"layout\": \"" << run.layout << "\",\n";
        char line[256];
        std::snprintf(line, sizeof line,
                      "     \"wall_seconds\": %.6f, "
                      "\"records_per_sec\": %.1f,\n",
                      run.wallSeconds, run.recordsPerSec);
        json << line;
        json << "     \"counters\": {\"r\": " << r.runtimeCycles
             << ", \"h\": " << r.tlbHitsL2 << ", \"m\": " << r.tlbMisses
             << ", \"c\": " << r.walkCycles
             << ", \"l1_tlb_hits\": " << r.l1TlbHits
             << ", \"walker_queue\": " << r.walkerQueueCycles << "},\n";
        json << "     \"cache_loads\": {\"prog_l1\": " << r.progL1dLoads
             << ", \"prog_l2\": " << r.progL2Loads
             << ", \"prog_l3\": " << r.progL3Loads
             << ", \"prog_dram\": " << r.progDramLoads
             << ", \"walk_l1\": " << r.walkL1dLoads
             << ", \"walk_l2\": " << r.walkL2Loads
             << ", \"walk_l3\": " << r.walkL3Loads
             << ", \"walk_dram\": " << r.walkDramLoads << "}}"
             << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    json << "  ],\n";
    char agg[256];
    std::snprintf(agg, sizeof agg,
                  "  \"aggregate\": {\"wall_seconds\": %.6f, "
                  "\"records_per_sec\": %.1f}",
                  total_wall, aggregate_rps);
    json << agg;
    if (have_baseline) {
        char base[512];
        std::snprintf(base, sizeof base,
                      ",\n  \"baseline\": {\"wall_seconds\": %.6f, "
                      "\"records_per_sec\": %.1f, \"source\": \"%s\"},\n"
                      "  \"speedup_vs_baseline\": %.3f",
                      base_wall, base_rps, baseline_source.c_str(),
                      base_rps > 0 ? aggregate_rps / base_rps : 0.0);
        json << base;
        if (base_rps > 0) {
            std::printf("speedup vs baseline (%s): %.3fx\n",
                        baseline_source.c_str(), aggregate_rps / base_rps);
        }
    }
    json << "\n}\n";

    std::ofstream out(out_path);
    out << json.str();
    out.close();
    std::printf("wrote %s\n", out_path.c_str());

    const std::string metrics_out =
        getOpt(argc, argv, "--metrics-out", "");
    if (!metrics_out.empty()) {
        mosaic::RunManifest manifest("replay_bench");
        manifest.setConfig("records", records);
        manifest.setConfig("reps", static_cast<std::uint64_t>(reps));
        manifest.setConfig("footprint_bytes", footprint);
        manifest.setConfig("out", out_path);
        auto written = manifest.write(metrics_out, mosaic::metrics());
        if (!written.ok()) {
            std::fprintf(stderr,
                         "warn: cannot write metrics manifest %s: %s\n",
                         metrics_out.c_str(),
                         written.error().str().c_str());
        } else {
            std::printf("wrote %s\n", metrics_out.c_str());
        }
    }
    return 0;
}
