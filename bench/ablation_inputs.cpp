/**
 * @file
 * Ablation: Mosmodel input selection.
 *
 * Quantifies the Section VII-C claim that no single metric wins
 * everywhere: degree-3 Lasso models restricted to C-only, M-only and
 * H-only versus the full (H, M, C) Mosmodel.
 */

#include "bench_common.hh"

#include <algorithm>
#include <cmath>

#include "models/evaluation.hh"
#include "models/mosmodel.hh"

int
main()
{
    using namespace mosaic;
    bench::banner("Ablation", "Mosmodel input subsets");

    auto data = bench::dataset();
    std::vector<std::vector<char>> variants = {
        {'C'}, {'M'}, {'H'}, {'M', 'C'}, {'H', 'M', 'C'}};

    TextTable table;
    std::vector<std::string> header = {"inputs", "overall max error",
                                       "pairs where best"};
    table.setHeader(header);

    // Per-pair errors for each variant.
    std::vector<double> overall(variants.size(), 0.0);
    std::vector<int> wins(variants.size(), 0);

    for (const auto &platform : data.platforms()) {
        for (const auto &workload : data.workloads()) {
            if (!data.has(platform, workload))
                continue;
            auto set = data.sampleSet(platform, workload);
            if (!set.tlbSensitive())
                continue;
            std::vector<double> errors;
            for (const auto &inputs : variants) {
                models::MosmodelConfig config;
                config.inputs = inputs;
                models::Mosmodel model(config);
                errors.push_back(
                    models::evaluateModel(model, set).maxError);
            }
            std::size_t best = 0;
            for (std::size_t v = 0; v < variants.size(); ++v) {
                overall[v] = std::max(overall[v], errors[v]);
                if (errors[v] < errors[best])
                    best = v;
            }
            ++wins[best];
        }
    }

    for (std::size_t v = 0; v < variants.size(); ++v) {
        std::string name(variants[v].begin(), variants[v].end());
        table.addRow({name, bench::pct(overall[v]),
                      std::to_string(wins[v])});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("expected: the full (H,M,C) model has the lowest "
                "worst-case error; C-only is the strongest single "
                "input, H-only the weakest (Table 8).\n");
    return 0;
}
