/**
 * @file
 * Section VII-D case study across *all* workloads: train every model
 * on the 54 4KB/2MB mosaics and predict the measured all-1GB run — the
 * "evaluate a new virtual-memory design" workflow with ground truth
 * available.
 *
 * Paper: both Mosmodel and the past linear models predict the 1GB
 * layout well for most workloads; where the runtime is polynomial in
 * C (pr-twitter, mcf on SandyBridge), only Mosmodel stays accurate.
 */

#include "bench_common.hh"

#include <algorithm>
#include <cmath>

int
main()
{
    using namespace mosaic;
    bench::banner("Case study (Sec. VII-D)",
                  "predicting the all-1GB layout");

    auto data = bench::dataset();
    std::vector<std::string> models = {"yaniv", "poly1", "mosmodel"};
    auto rows = exp::computeCaseStudy1g(data, models);

    for (const auto &platform : data.platforms()) {
        std::printf("--- %s ---\n", platform.c_str());
        TextTable table;
        table.setHeader({"workload", "yaniv", "poly1", "mosmodel"});
        for (const auto &row : rows) {
            if (row.platform != platform)
                continue;
            table.addRow({row.workload,
                          bench::pct(row.errors.at("yaniv")),
                          bench::pct(row.errors.at("poly1")),
                          bench::pct(row.errors.at("mosmodel"))});
        }
        std::printf("%s\n", table.render().c_str());
    }

    double worst_mos = 0.0, worst_yaniv = 0.0;
    for (const auto &row : rows) {
        worst_mos = std::max(worst_mos, row.errors.at("mosmodel"));
        worst_yaniv = std::max(worst_yaniv, row.errors.at("yaniv"));
    }
    std::printf("worst 1GB-prediction error:  yaniv %s   mosmodel %s\n",
                bench::pct(worst_yaniv).c_str(),
                bench::pct(worst_mos).c_str());
    return 0;
}
