/**
 * @file
 * Table 7: runtime statistics of spec17/xalancbmk_s on Broadwell under
 * all-4KB vs all-2MB pages, split into program and walker loads.
 *
 * Paper shape: ~zero TLB misses with 2MB pages; more program L3 loads
 * under 4KB pages (walker interference); walker cache traffic only
 * under 4KB.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mosaic;
    bench::banner("Table 7",
                  "spec17/xalancbmk_s counters, 4KB vs 2MB (Broadwell)");

    auto data = bench::dataset();
    const auto &r4k = data.findRun("Broadwell", "spec17/xalancbmk_s",
                                   exp::layoutAll4k);
    const auto &r2m = data.findRun("Broadwell", "spec17/xalancbmk_s",
                                   exp::layoutAll2m);

    auto fmt = [](std::uint64_t value) {
        return formatDouble(static_cast<double>(value) / 1e6, 3);
    };

    TextTable table;
    table.setHeader({"counter (millions)", "program 4KB", "program 2MB",
                     "walker 4KB", "walker 2MB"});
    table.addRow({"runtime cycles", fmt(r4k.result.runtimeCycles),
                  fmt(r2m.result.runtimeCycles), "-", "-"});
    table.addRow({"walk cycles", fmt(r4k.result.walkCycles),
                  fmt(r2m.result.walkCycles), "-", "-"});
    table.addRow({"TLB misses", fmt(r4k.result.tlbMisses),
                  fmt(r2m.result.tlbMisses), "-", "-"});
    table.addRow({"L1d loads", fmt(r4k.result.progL1dLoads),
                  fmt(r2m.result.progL1dLoads),
                  fmt(r4k.result.walkL1dLoads),
                  fmt(r2m.result.walkL1dLoads)});
    table.addRow({"L2 loads", fmt(r4k.result.progL2Loads),
                  fmt(r2m.result.progL2Loads),
                  fmt(r4k.result.walkL2Loads),
                  fmt(r2m.result.walkL2Loads)});
    table.addRow({"L3 loads", fmt(r4k.result.progL3Loads),
                  fmt(r2m.result.progL3Loads),
                  fmt(r4k.result.walkL3Loads),
                  fmt(r2m.result.walkL3Loads)});
    std::printf("%s\n", table.render().c_str());

    std::printf("paper shape: 2MB pages eliminate TLB misses for this "
                "475MB-class workload; 4KB pages add program L3 loads "
                "(walker-induced eviction) plus walker traffic.\n");
    return 0;
}
