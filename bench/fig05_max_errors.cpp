/**
 * @file
 * Figure 5: per-benchmark maximal absolute prediction error of all
 * nine models, one section per platform (Broadwell / Haswell /
 * SandyBridge).
 *
 * Paper: mosmodel typically below 2%; old models reach tens to
 * hundreds of percent; gapbs/bfs-road missing on Broadwell (not
 * TLB-sensitive there).
 */

#include "bench_common.hh"

int
main()
{
    using namespace mosaic;
    bench::banner("Figure 5",
                  "per-benchmark maximal absolute prediction errors");

    auto data = bench::dataset();
    auto rows = exp::computeErrorGrid(data, exp::ErrorKind::Max);
    auto order = exp::paperModelOrder();

    for (const auto &platform : data.platforms()) {
        std::printf("--- %s ---\n", platform.c_str());
        TextTable table;
        std::vector<std::string> header = {"benchmark"};
        header.insert(header.end(), order.begin(), order.end());
        table.setHeader(header);
        for (const auto &row : rows) {
            if (row.platform != platform)
                continue;
            std::vector<std::string> cells = {row.workload};
            if (!row.tlbSensitive) {
                cells.push_back("(not TLB-sensitive; dropped)");
                table.addRow(cells);
                continue;
            }
            for (const auto &name : order)
                cells.push_back(bench::pct(row.errors.at(name)));
            table.addRow(cells);
        }
        std::printf("%s\n", table.render().c_str());
    }
    std::printf("paper: mosmodel is typically below 2%% everywhere.\n");
    return 0;
}
