/**
 * @file
 * Figure 3: spec06/mcf on SandyBridge — runtime versus page-walk
 * cycles for the mixed-page layouts, with the two-point linear (Yaniv)
 * model and Mosmodel overlaid.
 *
 * Paper: the linear model misses the empirical curve; Mosmodel tracks
 * it within 2%.
 */

#include "bench_common.hh"

#include <cmath>

int
main()
{
    using namespace mosaic;
    bench::banner("Figure 3",
                  "spec06/mcf on SandyBridge: runtime vs walk cycles");

    auto data = bench::dataset();
    auto curve = exp::computeCurve(data, "SandyBridge", "spec06/mcf",
                                   {"yaniv", "mosmodel"});

    TextTable table;
    table.setHeader({"layout", "walk cycles", "measured R",
                     "linear model", "mosmodel", "lin err", "mos err"});
    double worst_linear = 0.0, worst_mos = 0.0;
    for (const auto &point : curve) {
        double linear = point.predicted.at("yaniv");
        double mos = point.predicted.at("mosmodel");
        double lin_err = std::fabs(point.measured - linear) /
                         point.measured;
        double mos_err = std::fabs(point.measured - mos) /
                         point.measured;
        worst_linear = std::max(worst_linear, lin_err);
        worst_mos = std::max(worst_mos, mos_err);
        table.addRow({point.layout, formatDouble(point.c / 1e6, 2),
                      formatDouble(point.measured / 1e6, 2),
                      formatDouble(linear / 1e6, 2),
                      formatDouble(mos / 1e6, 2), bench::pct(lin_err),
                      bench::pct(mos_err)});
    }
    std::printf("%s\n(cycle columns in millions)\n\n",
                table.render().c_str());
    std::printf("max linear-model error: %s   max mosmodel error: %s\n",
                bench::pct(worst_linear).c_str(),
                bench::pct(worst_mos).c_str());
    std::printf("paper: linear model fails on mcf; mosmodel max error "
                "< 2%%.\n");
    return 0;
}
