/**
 * @file
 * Figure 8: spec06/omnetpp is the friendly case — a single linear
 * regression in the walk cycles describes it well.
 */

#include "bench_common.hh"

#include <cmath>

#include "models/evaluation.hh"
#include "models/regression_models.hh"

int
main()
{
    using namespace mosaic;
    bench::banner("Figure 8",
                  "linear regression describes spec06/omnetpp well");

    auto data = bench::dataset();
    auto set = data.sampleSet("SandyBridge", "spec06/omnetpp");

    models::PolyModel poly1(1);
    auto errors = models::evaluateModel(poly1, set);

    auto curve = exp::computeCurve(data, "SandyBridge",
                                   "spec06/omnetpp", {"poly1"});
    TextTable table;
    table.setHeader({"layout", "walk cycles", "measured R", "poly1",
                     "error"});
    for (std::size_t i = 0; i < curve.size(); i += 5) {
        const auto &point = curve[i];
        double predicted = point.predicted.at("poly1");
        table.addRow({point.layout, formatDouble(point.c / 1e6, 2),
                      formatDouble(point.measured / 1e6, 2),
                      formatDouble(predicted / 1e6, 2),
                      bench::pct(std::fabs(point.measured - predicted) /
                                 point.measured)});
    }
    std::printf("%s\n(every 5th layout shown; cycles in millions)\n\n",
                table.render().c_str());

    std::printf("fitted model: %s\n", poly1.describe().c_str());
    std::printf("max error %s, geomean %s\n",
                bench::pct(errors.maxError).c_str(),
                bench::pct(errors.geoMeanError, 2).c_str());
    std::printf("paper: omnetpp is well described by the linear "
                "regressor.\n");
    return 0;
}
