/**
 * @file
 * Ablation: Mosalloc's full interception vs a libhugetlbfs-style
 * morecore-only hook (Section V-A/V-C).
 *
 * Two victims:
 *  - graph500 allocates with direct mmap: libhugetlbfs never sees the
 *    requests, so its "all 2MB" configuration changes nothing;
 *  - gups allocates with malloc, but under multi-arena glibc some
 *    requests escape morecore to mmap-backed arenas, leaking 4KB
 *    pages into a supposedly all-hugepage heap.
 *
 * Mosalloc intercepts every POSIX allocation path, so both workloads
 * get full hugepage coverage.
 */

#include "bench_common.hh"

#include "cpu/system.hh"
#include "workloads/graph500.hh"

namespace
{

using namespace mosaic;

/** Fraction of runtime saved versus the 4KB baseline. */
std::string
speedup(const cpu::RunResult &base, const cpu::RunResult &result)
{
    double fraction =
        (static_cast<double>(base.runtimeCycles) -
         static_cast<double>(result.runtimeCycles)) /
        static_cast<double>(base.runtimeCycles);
    return formatPercent(fraction);
}

} // namespace

int
main()
{
    using namespace mosaic;
    bench::banner("Ablation",
                  "full interception (Mosalloc) vs morecore-only "
                  "(libhugetlbfs)");
    cpu::PlatformSpec platform = cpu::sandyBridge();

    // ---- victim 1: graph500 (direct mmap) ----------------------------
    workloads::Graph500Params g500;
    g500.numVertices = 1u << 19;
    g500.refBudget = 250000;
    workloads::Graph500Workload graph(g500);
    auto graph_trace = graph.generateTrace();
    Bytes anon_size = graph.anonPoolSize();

    auto base_cfg = graph.baselineAllocConfig();
    auto mosalloc_cfg = graph.makeAllocConfig(
        alloc::MosaicLayout::uniform(anon_size, alloc::PageSize::Page2M));
    auto libhuge_cfg = alloc::libhugetlbfsStyleConfig(
        graph.heapPoolSize(), alloc::PageSize::Page2M, anon_size);

    auto g_base = cpu::simulateRun(platform, base_cfg, graph_trace);
    auto g_mos = cpu::simulateRun(platform, mosalloc_cfg, graph_trace);
    auto g_lib = cpu::simulateRun(platform, libhuge_cfg, graph_trace);

    std::printf("graph500/2GB (allocates with mmap):\n");
    TextTable t1;
    t1.setHeader({"backing", "runtime [Mcyc]", "TLB misses",
                  "vs 4KB"});
    t1.addRow({"4KB baseline",
               formatDouble(g_base.runtimeCycles / 1e6, 2),
               std::to_string(g_base.tlbMisses), "-"});
    t1.addRow({"mosalloc all-2MB",
               formatDouble(g_mos.runtimeCycles / 1e6, 2),
               std::to_string(g_mos.tlbMisses),
               speedup(g_base, g_mos)});
    t1.addRow({"libhugetlbfs-style 2MB",
               formatDouble(g_lib.runtimeCycles / 1e6, 2),
               std::to_string(g_lib.tlbMisses),
               speedup(g_base, g_lib)});
    std::printf("%s\n", t1.render().c_str());

    // ---- victim 2: malloc churn (the arena-escape bug) --------------
    // Thousands of sizeable mallocs, as an omnetpp-style message pool
    // makes: under multi-arena glibc a slice of them lands in
    // mmap-backed arenas that the morecore hook never sees.
    auto churn_trace = [](alloc::Mosalloc &allocator, Rng rng) {
        trace::MemoryTrace trace;
        std::vector<VirtAddr> blocks;
        const Bytes block = 96_KiB;
        for (int i = 0; i < 1500; ++i) {
            VirtAddr p = allocator.malloc(block);
            if (p != 0)
                blocks.push_back(p);
        }
        for (int i = 0; i < 220000; ++i) {
            VirtAddr base =
                blocks[rng.nextBounded(blocks.size())];
            trace.add(base + 8 * rng.nextBounded(block / 8), 3, false);
        }
        return trace;
    };

    const Bytes churn_heap = 256_MiB;
    alloc::MosallocConfig mos_cfg;
    mos_cfg.heapLayout = alloc::MosaicLayout::uniform(
        churn_heap, alloc::PageSize::Page2M);
    mos_cfg.anonLayout = alloc::MosaicLayout(256_MiB);
    alloc::Mosalloc mos_alloc(mos_cfg);
    trace::MemoryTrace mos_trace = churn_trace(mos_alloc, Rng(42));

    alloc::MosallocConfig base_churn_cfg;
    base_churn_cfg.heapLayout = alloc::MosaicLayout(churn_heap);
    base_churn_cfg.anonLayout = alloc::MosaicLayout(256_MiB);
    alloc::Mosalloc base_alloc(base_churn_cfg);
    trace::MemoryTrace base_trace = churn_trace(base_alloc, Rng(42));

    auto lib_cfg = alloc::libhugetlbfsStyleConfig(
        churn_heap, alloc::PageSize::Page2M, 256_MiB);
    alloc::Mosalloc lib_alloc(lib_cfg);
    trace::MemoryTrace lib_trace = churn_trace(lib_alloc, Rng(42));
    std::uint64_t escaped = lib_alloc.stats().directMmapAllocs;

    auto c_base = cpu::simulateRun(platform, base_churn_cfg, base_trace);
    auto c_mos = cpu::simulateRun(platform, mos_cfg, mos_trace);
    auto c_lib = cpu::simulateRun(platform, lib_cfg, lib_trace);

    std::printf("malloc churn (1500 x 96 KiB message blocks):\n");
    TextTable t2;
    t2.setHeader({"backing", "runtime [Mcyc]", "TLB misses", "vs 4KB"});
    t2.addRow({"4KB baseline",
               formatDouble(c_base.runtimeCycles / 1e6, 2),
               std::to_string(c_base.tlbMisses), "-"});
    t2.addRow({"mosalloc all-2MB",
               formatDouble(c_mos.runtimeCycles / 1e6, 2),
               std::to_string(c_mos.tlbMisses),
               speedup(c_base, c_mos)});
    t2.addRow({"libhugetlbfs-style 2MB (" + std::to_string(escaped) +
                   " arena escapes)",
               formatDouble(c_lib.runtimeCycles / 1e6, 2),
               std::to_string(c_lib.tlbMisses),
               speedup(c_base, c_lib)});
    std::printf("%s\n", t2.render().c_str());

    std::printf("expected: libhugetlbfs gains nothing on graph500 "
                "(mmap is not hooked) and leaks part of the churn "
                "workload to 4KB arena pages; Mosalloc covers both "
                "completely.\n");
    return 0;
}
