/**
 * @file
 * Figure 9 + Table 7 context: the fitted linear slope of
 * spec17/xalancbmk_s on Broadwell exceeds 1 — each walk cycle costs
 * *more* than one cycle of runtime, because page-table entries evict
 * warm application data from the caches.
 */

#include "bench_common.hh"

#include "cpu/system.hh"
#include "layouts/heuristics.hh"
#include "models/regression_models.hh"
#include "trace/miss_profile.hh"
#include "workloads/registry.hh"

int
main()
{
    using namespace mosaic;
    bench::banner("Figure 9",
                  "spec17/xalancbmk_s on Broadwell: linear slope > 1");

    auto data = bench::dataset();
    auto set = data.sampleSet("Broadwell", "spec17/xalancbmk_s");

    models::PolyModel poly1(1);
    poly1.fit(set);
    double slope = poly1.linearSlope();

    std::printf("fitted: %s\n", poly1.describe().c_str());
    std::printf("slope alpha (runtime cycles per walk cycle): %.3f\n\n",
                slope);

    // Show the pollution mechanism: program L3 loads at the 4KB vs
    // 2MB endpoints.
    const auto &r4k = data.findRun("Broadwell", "spec17/xalancbmk_s",
                                   exp::layoutAll4k);
    const auto &r2m = data.findRun("Broadwell", "spec17/xalancbmk_s",
                                   exp::layoutAll2m);
    TextTable table;
    table.setHeader({"counter", "4KB pages", "2MB pages"});
    table.addRow({"program L3 loads",
                  std::to_string(r4k.result.progL3Loads),
                  std::to_string(r2m.result.progL3Loads)});
    table.addRow({"walker L3 loads",
                  std::to_string(r4k.result.walkL3Loads),
                  std::to_string(r2m.result.walkL3Loads)});
    std::printf("%s\n", table.render().c_str());

    std::printf("paper: alpha > 1 for this workload; the extra L3 "
                "traffic under 4KB pages is walker-induced "
                "interference.\n\n");

    // The alpha > 1 regime needs the working set to be cache-resident
    // while exceeding TLB reach. Scaling the L3 to 1/16 (DESIGN.md)
    // puts it *below* the 6MB TLB reach, which inverts that regime —
    // so this part of the figure is re-run on a Broadwell variant
    // with the nominal, unscaled 60MB L3.
    std::printf("re-running on Broadwell with the nominal 60MiB L3:\n");
    auto workload = workloads::makeWorkload("spec17/xalancbmk_s");
    auto trace = workload->generateTrace();
    trace::MissProfile profile(trace, workload->primaryPoolBase(),
                               workload->primaryPoolSize());
    auto layouts = layouts::paperCampaignLayouts(
        workload->primaryPoolSize(), profile);

    cpu::PlatformSpec full = cpu::broadwell();
    full.hierarchy.l3.capacity = full.nominalL3;
    full.hierarchy.l3.ways = 15; // 60MiB/64B/15 = 2^16 sets

    models::SampleSet full_set;
    for (const auto &named : layouts) {
        auto result = cpu::simulateRun(
            full, workload->makeAllocConfig(named.layout), trace);
        models::Sample sample;
        sample.layoutName = named.name;
        sample.r = static_cast<double>(result.runtimeCycles);
        sample.h = static_cast<double>(result.tlbHitsL2);
        sample.m = static_cast<double>(result.tlbMisses);
        sample.c = static_cast<double>(result.walkCycles);
        full_set.samples.push_back(sample);
        if (named.name == "grow-0")
            full_set.all4k = sample;
        if (named.name == "grow-8")
            full_set.all2m = sample;
    }
    full_set.all1g = full_set.all2m;

    models::PolyModel full_poly(1);
    full_poly.fit(full_set);
    double full_slope = full_poly.linearSlope();
    std::printf("  fitted: %s\n", full_poly.describe().c_str());
    std::printf("  slope alpha with nominal L3: %.3f %s\n", full_slope,
                full_slope > 1.0 ? "(> 1, reproduced)"
                                 : "(see EXPERIMENTS.md)");
    return 0;
}
