/**
 * @file
 * Ablation: one vs two hardware page walkers (the Broadwell change in
 * Table 4).
 *
 * Reproduces the Section VI-D mechanism: with two walkers, the walk-
 * cycle counter C sums both walkers' busy cycles and can exceed the
 * runtime R on gups — driving the Basu model's ideal-runtime estimate
 * negative. This bench does not use the shared dataset: it simulates
 * a Broadwell variant pair directly.
 */

#include "bench_common.hh"

#include "cpu/system.hh"
#include "workloads/gups.hh"

int
main()
{
    using namespace mosaic;
    bench::banner("Ablation", "1 vs 2 hardware page walkers (gups)");

    workloads::GupsParams params = workloads::gupsSmall();
    params.updates = 120000;
    workloads::GupsWorkload workload(params);
    auto trace = workload.generateTrace();
    auto alloc_config = workload.baselineAllocConfig(); // all 4KB

    TextTable table;
    table.setHeader({"walkers", "runtime R", "walk cycles C", "C / R",
                     "queue cycles", "Basu beta = R - C"});
    for (unsigned walkers : {1u, 2u}) {
        cpu::PlatformSpec spec = cpu::broadwell();
        spec.mmu.numWalkers = walkers;
        auto result = cpu::simulateRun(spec, alloc_config, trace);
        double ratio = static_cast<double>(result.walkCycles) /
                       static_cast<double>(result.runtimeCycles);
        double beta = static_cast<double>(result.runtimeCycles) -
                      static_cast<double>(result.walkCycles);
        table.addRow({std::to_string(walkers),
                      formatDouble(result.runtimeCycles / 1e6, 2) + "M",
                      formatDouble(result.walkCycles / 1e6, 2) + "M",
                      formatDouble(ratio, 3),
                      formatDouble(result.walkerQueueCycles / 1e6, 2) +
                          "M",
                      formatDouble(beta / 1e6, 2) + "M"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("expected: with 2 walkers C/R rises above 1 (negative "
                "Basu beta), and runtime improves while queueing "
                "collapses.\n");
    return 0;
}
