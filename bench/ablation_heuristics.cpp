/**
 * @file
 * Ablation: layout-exploration heuristics (Section VI-B).
 *
 * The paper argues the sliding window yields the most diverse samples
 * because it targets the TLB-miss hot region. Here each heuristic
 * family's samples train a Mosmodel that is then evaluated on the full
 * 54-sample set; the family with the most informative spread
 * generalizes best.
 */

#include "bench_common.hh"

#include <algorithm>
#include <cmath>

#include "models/evaluation.hh"
#include "models/mosmodel.hh"
#include "stats/metrics.hh"

int
main()
{
    using namespace mosaic;
    bench::banner("Ablation", "layout-heuristic sample diversity");

    auto data = bench::dataset();
    struct Family
    {
        const char *name;
        const char *prefix;
    };
    const Family families[] = {{"growing window", "grow-"},
                               {"random window", "rand-"},
                               {"sliding window", "slide-"}};

    TextTable table;
    table.setHeader({"heuristic", "samples/pair", "mean C spread",
                     "train-on-family max error"});

    for (const auto &family : families) {
        double spread_sum = 0.0;
        double worst = 0.0;
        int pairs = 0;
        std::size_t samples_per_pair = 0;

        for (const auto &platform : data.platforms()) {
            for (const auto &workload : data.workloads()) {
                if (!data.has(platform, workload))
                    continue;
                auto full = data.sampleSet(platform, workload);
                if (!full.tlbSensitive())
                    continue;

                models::SampleSet subset;
                subset.all4k = full.all4k;
                subset.all2m = full.all2m;
                subset.all1g = full.all1g;
                double min_c = 1e300, max_c = 0.0;
                for (const auto &sample : full.samples) {
                    if (sample.layoutName.rfind(family.prefix, 0) == 0) {
                        subset.samples.push_back(sample);
                        min_c = std::min(min_c, sample.c);
                        max_c = std::max(max_c, sample.c);
                    }
                }
                samples_per_pair = subset.samples.size();
                spread_sum += (max_c - min_c) /
                              std::max(full.all4k.c, 1.0);

                // Always anchor with the uniform endpoints so every
                // family can at least interpolate.
                subset.samples.push_back(full.all4k);
                subset.samples.push_back(full.all2m);

                models::Mosmodel model;
                model.fit(subset);
                stats::Vector measured, predicted;
                for (const auto &sample : full.samples) {
                    measured.push_back(sample.r);
                    predicted.push_back(model.predict(sample));
                }
                worst = std::max(
                    worst, stats::maxAbsRelError(measured, predicted));
                ++pairs;
            }
        }
        table.addRow({family.name, std::to_string(samples_per_pair),
                      formatDouble(spread_sum / pairs, 3),
                      bench::pct(worst)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("expected: sliding-window samples (36 of 54, hot-"
                "region aware) generalize best; random windows mostly "
                "duplicate the endpoints (Section VI-B).\n");
    return 0;
}
