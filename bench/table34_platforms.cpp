/**
 * @file
 * Tables 3-5: the experimental platforms, the TLB organization of five
 * Intel generations, and the benchmark registry — printed from the
 * presets so the modelled configuration is auditable.
 */

#include "bench_common.hh"

#include <map>

#include "cpu/platform.hh"
#include "workloads/registry.hh"

int
main()
{
    using namespace mosaic;
    using namespace mosaic::cpu;
    bench::banner("Tables 3-4", "platforms and TLB configurations");

    TextTable t3;
    t3.setHeader({"generation", "processor", "GHz", "cores", "nominal L3",
                  "modelled L3", "DRAM lat", "nominal memory"});
    for (const auto &spec : paperPlatforms()) {
        t3.addRow({spec.name, spec.processor, formatDouble(spec.ghz, 1),
                   std::to_string(spec.coresPerSocket) + "C x " +
                       std::to_string(spec.sockets),
                   formatBytes(spec.nominalL3),
                   formatBytes(spec.hierarchy.l3.capacity),
                   std::to_string(spec.hierarchy.latencies.dram) + " cyc",
                   formatBytes(spec.nominalMainMemory)});
    }
    std::printf("Table 3 (modelled L3 is 1/16 of nominal — the "
                "footprint scale):\n%s\n",
                t3.render().c_str());

    TextTable t4;
    t4.setHeader({"generation", "year", "L1 4KB", "L1 2MB", "L1 1GB",
                  "L2 entries", "L2 2MB", "L2 1GB", "walkers"});
    for (const auto &spec : allPlatforms()) {
        const auto &mmu = spec.mmu;
        t4.addRow({spec.name, std::to_string(spec.year),
                   std::to_string(mmu.l1Tlb.entries4k),
                   std::to_string(mmu.l1Tlb.entries2m),
                   std::to_string(mmu.l1Tlb.entries1g),
                   std::to_string(mmu.l2Tlb.entries),
                   mmu.l2Tlb.shares2m ? "shared" : "no",
                   std::to_string(mmu.l2Tlb.entries1g),
                   std::to_string(mmu.numWalkers)});
    }
    std::printf("Table 4:\n%s\n", t4.render().c_str());

    TextTable t5;
    t5.setHeader({"suite", "benchmarks (paper labels)"});
    std::map<std::string, std::string> suites;
    for (const auto &label : workloads::workloadLabels()) {
        auto slash = label.find('/');
        std::string suite = label.substr(0, slash);
        std::string name = label.substr(slash + 1);
        if (!suites[suite].empty())
            suites[suite] += ", ";
        suites[suite] += name;
    }
    for (const auto &[suite, names] : suites)
        t5.addRow({suite, names});
    std::printf("Table 5 (%zu TLB-sensitive benchmarks):\n%s\n",
                workloads::workloadLabels().size(),
                t5.render().c_str());
    return 0;
}
