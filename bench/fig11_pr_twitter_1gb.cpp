/**
 * @file
 * Figure 11 (and the Section VII-D validation): predicting the
 * all-1GB-pages layout of gapbs/pr-twitter on SandyBridge from models
 * trained only on 4KB/2MB mosaics. The paper: Yaniv misses by 10%,
 * Mosmodel within 1%.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mosaic;
    bench::banner("Figure 11",
                  "gapbs/pr-twitter on SandyBridge: predicting the "
                  "1GB-pages run");

    auto data = bench::dataset();
    auto rows = exp::computeCaseStudy1g(data, {"yaniv", "mosmodel"});

    TextTable table;
    table.setHeader({"platform", "workload", "measured R(1GB)",
                     "yaniv err", "mosmodel err"});
    for (const auto &row : rows) {
        if (row.workload != "gapbs/pr-twitter")
            continue;
        table.addRow({row.platform, row.workload,
                      formatDouble(row.measured1g / 1e6, 2) + "M",
                      bench::pct(row.errors.at("yaniv")),
                      bench::pct(row.errors.at("mosmodel"))});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("paper (SandyBridge): yaniv off by 10%%, mosmodel "
                "within 1%%.\n");
    return 0;
}
