/**
 * @file
 * Figure 6: per-benchmark geometric-mean absolute prediction error of
 * all nine models per platform.
 *
 * Paper: mosmodel typically below 0.5%.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mosaic;
    bench::banner("Figure 6",
                  "per-benchmark geomean absolute prediction errors");

    auto data = bench::dataset();
    auto rows = exp::computeErrorGrid(data, exp::ErrorKind::GeoMean);
    auto order = exp::paperModelOrder();

    for (const auto &platform : data.platforms()) {
        std::printf("--- %s ---\n", platform.c_str());
        TextTable table;
        std::vector<std::string> header = {"benchmark"};
        header.insert(header.end(), order.begin(), order.end());
        table.setHeader(header);
        for (const auto &row : rows) {
            if (row.platform != platform)
                continue;
            std::vector<std::string> cells = {row.workload};
            if (!row.tlbSensitive) {
                cells.push_back("(not TLB-sensitive; dropped)");
                table.addRow(cells);
                continue;
            }
            for (const auto &name : order)
                cells.push_back(bench::pct(row.errors.at(name), 2));
            table.addRow(cells);
        }
        std::printf("%s\n", table.render().c_str());
    }
    std::printf("paper: mosmodel geomean error typically below "
                "0.5%%.\n");
    return 0;
}
