/**
 * @file
 * Table 6: maximal K-fold cross-validation errors of the new models
 * across all machines and workloads.
 *
 * Paper values: poly1 36.4%, poly2 19.1%, poly3 20.0%, mosmodel 4.3%.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mosaic;
    bench::banner("Table 6", "maximal cross-validation errors");

    auto data = bench::dataset();
    auto cv = exp::computeCrossValidation(data, 6);
    auto fit = exp::computeOverallMaxErrors(data);

    TextTable table;
    table.setHeader({"model", "cross-validation max error",
                     "fit-on-all max error (Fig. 2b)"});
    for (const char *name : {"poly1", "poly2", "poly3", "mosmodel"})
        table.addRow({name, bench::pct(cv.at(name)),
                      bench::pct(fit.at(name))});
    std::printf("%s\n", table.render().c_str());

    std::printf("paper: CV errors are worse than fit-on-all, but "
                "mosmodel still clearly outperforms (4.3%% vs "
                "19-36%%).\n");
    return 0;
}
