/**
 * @file
 * Ablation: polynomial degree sweep (single input C).
 *
 * Motivates the paper's choice of degree 3: fit-on-all error shrinks
 * monotonically with degree, but cross-validation error bottoms out
 * and then rises once the model starts overfitting 54 samples.
 */

#include "bench_common.hh"

#include <algorithm>
#include <cmath>

#include "models/regression_models.hh"

int
main()
{
    using namespace mosaic;
    bench::banner("Ablation", "polynomial degree sweep (poly1..poly5)");

    auto data = bench::dataset();

    TextTable table;
    table.setHeader({"degree", "fit-on-all max error",
                     "cross-validation max error"});
    for (unsigned degree = 1; degree <= 5; ++degree) {
        double fit_worst = 0.0;
        double cv_worst = 0.0;
        for (const auto &platform : data.platforms()) {
            for (const auto &workload : data.workloads()) {
                if (!data.has(platform, workload))
                    continue;
                auto set = data.sampleSet(platform, workload);
                if (!set.tlbSensitive())
                    continue;
                models::PolyModel model(degree);
                auto errors = models::evaluateModel(model, set);
                fit_worst = std::max(fit_worst, errors.maxError);
                double cv = models::crossValidateMaxError(
                    [degree] {
                        return std::make_unique<models::PolyModel>(
                            degree);
                    },
                    set);
                cv_worst = std::max(cv_worst, cv);
            }
        }
        table.addRow({std::to_string(degree), bench::pct(fit_worst),
                      bench::pct(cv_worst)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("expected shape: the fitted residual (RSS) shrinks "
                "monotonically with degree, but these columns report "
                "the *maximal relative* error, which least squares "
                "does not minimize — so individual degrees can buck "
                "the trend (the paper notes the same mismatch in "
                "Section VII-C). CV stops improving past degree ~3, "
                "the paper's pick.\n");
    return 0;
}
