/**
 * @file
 * Figure 10: gups/16GB on SandyBridge — the runtime is visibly
 * non-linear in the walk cycles; linear regression errs (13% in the
 * paper) while a second-order polynomial tracks it within 2%.
 */

#include "bench_common.hh"

#include "models/evaluation.hh"
#include "models/regression_models.hh"

int
main()
{
    using namespace mosaic;
    bench::banner("Figure 10",
                  "gups/16GB on SandyBridge: linear vs poly2");

    auto data = bench::dataset();
    auto set = data.sampleSet("SandyBridge", "gups/16GB");

    models::PolyModel poly1(1), poly2(2);
    auto e1 = models::evaluateModel(poly1, set);
    auto e2 = models::evaluateModel(poly2, set);

    auto curve = exp::computeCurve(data, "SandyBridge", "gups/16GB",
                                   {"poly1", "poly2"});
    TextTable table;
    table.setHeader({"layout", "walk cycles", "measured R", "poly1",
                     "poly2"});
    for (std::size_t i = 0; i < curve.size(); i += 4) {
        const auto &point = curve[i];
        table.addRow({point.layout, formatDouble(point.c / 1e6, 1),
                      formatDouble(point.measured / 1e6, 1),
                      formatDouble(point.predicted.at("poly1") / 1e6, 1),
                      formatDouble(point.predicted.at("poly2") / 1e6,
                                   1)});
    }
    std::printf("%s\n(every 4th layout; cycles in millions)\n\n",
                table.render().c_str());

    std::printf("poly1 max error: %s    poly2 max error: %s\n",
                bench::pct(e1.maxError).c_str(),
                bench::pct(e2.maxError).c_str());
    std::printf("paper: linear errs up to 13%%, poly2 within 2%%.\n");
    return 0;
}
